#include "rlv/omega/lasso.hpp"

#include <stdexcept>
#include <vector>

#include "rlv/util/scc.hpp"

namespace rlv {

bool accepts_lasso(const Buchi& a, const Word& u, const Word& v) {
  if (v.empty()) {
    // An assert would vanish under NDEBUG and silently answer membership of
    // a finite word as if it were an ω-word.
    throw std::invalid_argument("accepts_lasso: period must be non-empty");
  }
  const std::size_t n = a.num_states();

  // States reachable after reading u (over all runs).
  const DynBitset after_u = a.structure().run(u);
  if (after_u.none()) return false;

  // v-step relation with acceptance flag: edge p -> q when some run of v
  // from p ends in q; flagged when some such run visits an accepting state
  // (the acceptance of intermediate states *and* of q and p itself count —
  // visiting p at the loop point happens infinitely often too).
  //
  // Computed by per-source BFS over (automaton state, position in v) with a
  // "seen accepting" bit.
  struct Edge {
    State target;
    bool accepting;
  };
  std::vector<std::vector<Edge>> rel(n);
  const std::size_t m = v.size();
  const DynBitset acc_mask = a.structure().accepting_set();
  for (State p = 0; p < n; ++p) {
    // DP over positions: reachable[i][q][f] — implemented as two bitsets per
    // position layer (f = 0/1).
    DynBitset cur0(n);
    DynBitset cur1(n);
    if (a.is_accepting(p)) {
      cur1.set(p);
    } else {
      cur0.set(p);
    }
    for (std::size_t i = 0; i < m; ++i) {
      DynBitset next0 = a.structure().step(cur0, v[i]);
      DynBitset next1 = a.structure().step(cur1, v[i]);
      // Entering an accepting state upgrades the flag.
      DynBitset upgraded = next0;
      upgraded &= acc_mask;
      next0 -= acc_mask;
      next1 |= upgraded;
      cur0 = std::move(next0);
      cur1 = std::move(next1);
    }
    cur0.for_each([&](std::size_t q) {
      rel[p].push_back({static_cast<State>(q), false});
    });
    cur1.for_each([&](std::size_t q) {
      rel[p].push_back({static_cast<State>(q), true});
    });
  }

  // Find an SCC of the v-relation graph, reachable from `after_u`, that
  // contains an internal accepting-flagged edge.
  std::vector<std::vector<std::uint32_t>> succ(n);
  for (State p = 0; p < n; ++p) {
    for (const Edge& e : rel[p]) succ[p].push_back(e.target);
  }
  const SccResult scc = tarjan_scc(succ);

  std::vector<bool> scc_has_acc_edge(scc.count, false);
  for (State p = 0; p < n; ++p) {
    for (const Edge& e : rel[p]) {
      if (e.accepting && scc.component[p] == scc.component[e.target]) {
        scc_has_acc_edge[scc.component[p]] = true;
      }
    }
  }

  // Forward reachability from after_u over the v-relation.
  DynBitset reach(n);
  std::vector<State> work;
  after_u.for_each([&](std::size_t s) {
    reach.set(s);
    work.push_back(static_cast<State>(s));
  });
  while (!work.empty()) {
    const State s = work.back();
    work.pop_back();
    if (scc_has_acc_edge[scc.component[s]]) return true;
    for (const std::uint32_t t : succ[s]) {
      if (!reach.test(t)) {
        reach.set(t);
        work.push_back(t);
      }
    }
  }
  return false;
}

bool accepts_lasso_gen(const GenBuchi& a, const Word& u, const Word& v) {
  if (v.empty()) {
    throw std::invalid_argument("accepts_lasso_gen: period must be non-empty");
  }
  const std::size_t n = a.structure.num_states();
  const std::size_t k = a.sets.size();
  if (k > 16) {
    throw std::invalid_argument(
        "accepts_lasso_gen: mask-based membership supports up to 16 sets");
  }
  const std::uint32_t full = (k == 0) ? 0 : ((1u << k) - 1);

  const DynBitset after_u = a.structure.run(u);
  if (after_u.none()) return false;
  if (k == 0) {
    // Any infinite run accepts; check a run of v^ω exists via the plain
    // relation reachability below with trivial masks.
  }

  auto state_mask = [&](std::size_t s) {
    std::uint32_t mask = 0;
    for (std::size_t i = 0; i < k; ++i) {
      if (a.sets[i].test(s)) mask |= (1u << i);
    }
    return mask;
  };

  // v-step relation with visited-sets mask.
  struct Edge {
    State target;
    std::uint32_t mask;
  };
  std::vector<std::vector<Edge>> rel(n);
  const std::size_t m = v.size();
  for (State p = 0; p < n; ++p) {
    // Layered BFS over (state, mask).
    std::vector<std::vector<std::uint32_t>> cur(n);
    cur[p].push_back(state_mask(p));
    for (std::size_t i = 0; i < m; ++i) {
      std::vector<std::vector<std::uint32_t>> next(n);
      std::vector<std::uint32_t> seen_stamp(n * (full + 1), 0);
      for (State s = 0; s < n; ++s) {
        if (cur[s].empty()) continue;
        for (const auto& t : a.structure.out(s)) {
          if (t.symbol != v[i]) continue;
          const std::uint32_t add = state_mask(t.target);
          for (const std::uint32_t mask : cur[s]) {
            const std::uint32_t nm = mask | add;
            std::uint32_t& stamp = seen_stamp[t.target * (full + 1) + nm];
            if (stamp) continue;
            stamp = 1;
            next[t.target].push_back(nm);
          }
        }
      }
      cur = std::move(next);
    }
    for (State q = 0; q < n; ++q) {
      for (const std::uint32_t mask : cur[q]) rel[p].push_back({q, mask});
    }
  }

  // SCCs of the relation graph; an SCC accepts when the union of its
  // internal edge masks covers every set.
  std::vector<std::vector<std::uint32_t>> succ(n);
  for (State p = 0; p < n; ++p) {
    for (const Edge& e : rel[p]) succ[p].push_back(e.target);
  }
  const SccResult scc = tarjan_scc(succ);
  std::vector<std::uint32_t> covered(scc.count, 0);
  std::vector<bool> has_internal(scc.count, false);
  for (State p = 0; p < n; ++p) {
    for (const Edge& e : rel[p]) {
      if (scc.component[p] == scc.component[e.target]) {
        covered[scc.component[p]] |= e.mask;
        has_internal[scc.component[p]] = true;
      }
    }
  }

  DynBitset reach(n);
  std::vector<State> work;
  after_u.for_each([&](std::size_t s) {
    reach.set(s);
    work.push_back(static_cast<State>(s));
  });
  while (!work.empty()) {
    const State s = work.back();
    work.pop_back();
    const std::uint32_t c = scc.component[s];
    if (has_internal[c] && (covered[c] & full) == full) return true;
    for (const std::uint32_t t : succ[s]) {
      if (!reach.test(t)) {
        reach.set(t);
        work.push_back(static_cast<State>(t));
      }
    }
  }
  return false;
}

}  // namespace rlv

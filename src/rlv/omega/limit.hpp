#pragma once

// The limit operator (Definition in §3): lim(L) = { x ∈ Σ^ω | infinitely
// many prefixes of x lie in L }. For a prefix-closed regular language L —
// the behaviors of the paper's transition systems (Definition 6.2) — lim(L)
// is exactly the set of infinite runs of any trim automaton for L in which
// every state is accepting (König's lemma gives the converse inclusion, cf.
// Lemma 8.1's proof).

#include "rlv/lang/dfa.hpp"
#include "rlv/lang/nfa.hpp"
#include "rlv/omega/buchi.hpp"

namespace rlv {

/// Büchi automaton for lim(L(nfa)), where L(nfa) must be prefix-closed and
/// every state of `nfa` accepting (callers typically pass the result of
/// prefix_language or prefix_nfa). All states of the result are accepting;
/// states without infinite continuation are removed.
[[nodiscard]] Buchi limit_of_prefix_closed(const Nfa& nfa);

/// Same, computed on the determinized automaton. Slower; used to cross-check
/// the direct construction in tests.
[[nodiscard]] Buchi limit_via_determinization(const Nfa& nfa);

/// General limit for an *arbitrary* regular L (not necessarily
/// prefix-closed): lim(L) is ω-regular; built from the determinized
/// automaton with the DFA-accepting states as the Büchi set.
[[nodiscard]] Buchi limit_general(const Nfa& nfa);

}  // namespace rlv

#include "rlv/omega/emptiness.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "rlv/omega/live.hpp"
#include "rlv/util/scc.hpp"

namespace rlv {

namespace {

bool empty_scc(const Buchi& a) { return omega_empty(a); }

/// Nested DFS (CVWY). The blue search explores the automaton; from the
/// postorder visit of every accepting state, the red search looks for a
/// cycle back onto the blue stack.
bool empty_ndfs(const Buchi& a, Budget* budget) {
  const std::size_t n = a.num_states();
  std::vector<bool> blue(n, false);
  std::vector<bool> red(n, false);
  std::vector<bool> on_stack(n, false);

  struct Frame {
    State state;
    std::size_t edge;
  };

  // Red search from `seed`: true iff it can reach a state on the blue stack.
  auto red_search = [&](State seed) {
    std::vector<Frame> stack;
    if (!red[seed]) {
      red[seed] = true;
      stack.push_back({seed, 0});
    }
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.edge < a.out(f.state).size()) {
        const State t = a.out(f.state)[f.edge++].target;
        if (on_stack[t]) return true;
        if (!red[t]) {
          red[t] = true;
          stack.push_back({t, 0});
        }
      } else {
        stack.pop_back();
      }
    }
    return false;
  };

  for (const State init : a.initial()) {
    if (blue[init]) continue;
    std::vector<Frame> stack;
    blue[init] = true;
    on_stack[init] = true;
    stack.push_back({init, 0});
    while (!stack.empty()) {
      budget_tick(budget);
      Frame& f = stack.back();
      if (f.edge < a.out(f.state).size()) {
        const State t = a.out(f.state)[f.edge++].target;
        if (!blue[t]) {
          blue[t] = true;
          on_stack[t] = true;
          stack.push_back({t, 0});
        }
      } else {
        // Postorder: run the red search from accepting states. The state is
        // still on the stack, so a red path back to it closes a cycle.
        if (a.is_accepting(f.state)) {
          if (red_search(f.state)) return false;
        }
        on_stack[f.state] = false;
        stack.pop_back();
      }
    }
  }
  return true;
}

}  // namespace

bool buchi_empty(const Buchi& a, EmptinessAlgorithm algorithm,
                 Budget* budget) {
  StageScope scope(budget, Stage::kEmptiness);
  switch (algorithm) {
    case EmptinessAlgorithm::kScc:
      return empty_scc(a);
    case EmptinessAlgorithm::kNestedDfs:
      return empty_ndfs(a, budget);
  }
  return true;  // unreachable
}

std::optional<Lasso> find_accepting_lasso_product(
    const std::vector<const Buchi*>& operands, Budget* budget) {
  StageScope scope(budget, Stage::kEmptiness);
  OnTheFlyProduct product(operands, budget);

  // CVWY nested DFS with witness extraction. The blue stack holds the DFS
  // path from an initial state; when the red search (run at the postorder
  // visit of an accepting state `seed`) reaches a state on the blue stack,
  // the lasso is: prefix = blue-stack word down to `seed`; period = red path
  // from `seed` to the hit state + blue-stack segment from the hit state
  // back down to `seed`.
  struct Frame {
    State state;
    std::size_t edge;
    Symbol via;  // symbol on the edge from the parent frame (unused at root)
  };

  std::vector<bool> blue;
  std::vector<bool> red;
  std::vector<bool> on_stack;
  auto ensure = [&](State s) {
    if (s >= blue.size()) {
      blue.resize(s + 1, false);
      red.resize(s + 1, false);
      on_stack.resize(s + 1, false);
    }
  };

  std::vector<Frame> blue_stack;

  // Red search from the accepting seed (the current top of the blue stack).
  // On a hit, returns the period of the lasso.
  auto red_search = [&](State seed) -> std::optional<Word> {
    std::vector<Frame> stack;
    if (!red[seed]) {
      red[seed] = true;
      stack.push_back({seed, 0, 0});
    }
    while (!stack.empty()) {
      budget_tick(budget);
      Frame& f = stack.back();
      const auto& edges = product.out(f.state);
      if (f.edge < edges.size()) {
        const Transition t = edges[f.edge++];
        ensure(t.target);
        if (on_stack[t.target]) {
          Word period;
          for (std::size_t i = 1; i < stack.size(); ++i) {
            period.push_back(stack[i].via);
          }
          period.push_back(t.symbol);
          // Blue segment: from just below the hit state down to the seed.
          std::size_t hit = blue_stack.size();
          for (std::size_t i = 0; i < blue_stack.size(); ++i) {
            if (blue_stack[i].state == t.target) {
              hit = i;
              break;
            }
          }
          for (std::size_t i = hit + 1; i < blue_stack.size(); ++i) {
            period.push_back(blue_stack[i].via);
          }
          return period;
        }
        if (!red[t.target]) {
          red[t.target] = true;
          stack.push_back({t.target, 0, t.symbol});
        }
      } else {
        stack.pop_back();
      }
    }
    return std::nullopt;
  };

  for (const State init : product.initial()) {
    ensure(init);
    if (blue[init]) continue;
    blue[init] = true;
    on_stack[init] = true;
    blue_stack.assign(1, {init, 0, 0});
    while (!blue_stack.empty()) {
      budget_tick(budget);
      Frame& f = blue_stack.back();
      const auto& edges = product.out(f.state);
      if (f.edge < edges.size()) {
        const Transition t = edges[f.edge++];
        ensure(t.target);
        if (!blue[t.target]) {
          blue[t.target] = true;
          on_stack[t.target] = true;
          blue_stack.push_back({t.target, 0, t.symbol});
        }
      } else {
        if (product.is_accepting(f.state)) {
          if (std::optional<Word> period = red_search(f.state)) {
            Word prefix;
            for (std::size_t i = 1; i < blue_stack.size(); ++i) {
              prefix.push_back(blue_stack[i].via);
            }
            return Lasso{std::move(prefix), std::move(*period)};
          }
        }
        on_stack[f.state] = false;
        blue_stack.pop_back();
      }
    }
  }
  return std::nullopt;
}

bool product_empty(const std::vector<const Buchi*>& operands, Budget* budget) {
  return !find_accepting_lasso_product(operands, budget).has_value();
}

std::optional<Lasso> find_accepting_lasso(const Buchi& a, Budget* budget) {
  StageScope scope(budget, Stage::kEmptiness);
  const std::size_t n = a.num_states();
  const DynBitset live = live_states(a);

  // Recompute accepting SCCs to aim the prefix at an accepting state inside
  // a non-trivial SCC.
  std::vector<std::vector<std::uint32_t>> succ(n);
  for (State s = 0; s < n; ++s) {
    for (const auto& t : a.out(s)) succ[s].push_back(t.target);
  }
  const SccResult scc = tarjan_scc(succ);

  auto is_anchor = [&](State s) {
    return a.is_accepting(s) && scc.nontrivial[scc.component[s]] &&
           live.test(s);
  };

  // BFS from initial states to the nearest anchor, recording parent edges.
  std::vector<std::pair<State, Symbol>> parent(n, {kNoState, 0});
  std::vector<bool> seen(n, false);
  std::queue<State> queue;
  for (const State s : a.initial()) {
    if (!seen[s]) {
      seen[s] = true;
      queue.push(s);
    }
  }
  State anchor = kNoState;
  while (!queue.empty()) {
    budget_tick(budget);
    const State s = queue.front();
    queue.pop();
    if (is_anchor(s)) {
      anchor = s;
      break;
    }
    for (const auto& t : a.out(s)) {
      if (!seen[t.target]) {
        seen[t.target] = true;
        parent[t.target] = {s, t.symbol};
        queue.push(t.target);
      }
    }
  }
  if (anchor == kNoState) return std::nullopt;

  Word prefix;
  for (State s = anchor; parent[s].first != kNoState; s = parent[s].first) {
    prefix.push_back(parent[s].second);
  }
  std::reverse(prefix.begin(), prefix.end());

  // BFS within the anchor's SCC for a non-empty cycle anchor -> anchor.
  const std::uint32_t comp = scc.component[anchor];
  std::vector<std::pair<State, Symbol>> cyc_parent(n, {kNoState, 0});
  std::vector<bool> cyc_seen(n, false);
  std::queue<State> cq;
  // Seed with anchor's in-SCC successors so the cycle is non-empty.
  State closer = kNoState;
  for (const auto& t : a.out(anchor)) {
    if (scc.component[t.target] != comp) continue;
    if (t.target == anchor) {
      // Self-loop: period is a single symbol.
      return Lasso{std::move(prefix), {t.symbol}};
    }
    if (!cyc_seen[t.target]) {
      cyc_seen[t.target] = true;
      cyc_parent[t.target] = {anchor, t.symbol};
      cq.push(t.target);
    }
  }
  while (!cq.empty() && closer == kNoState) {
    const State s = cq.front();
    cq.pop();
    for (const auto& t : a.out(s)) {
      if (scc.component[t.target] != comp) continue;
      if (t.target == anchor) {
        closer = s;
        Word period;
        period.push_back(t.symbol);
        for (State v = s; cyc_parent[v].first != kNoState;
             v = cyc_parent[v].first) {
          period.push_back(cyc_parent[v].second);
        }
        std::reverse(period.begin(), period.end());
        return Lasso{std::move(prefix), std::move(period)};
      }
      if (!cyc_seen[t.target]) {
        cyc_seen[t.target] = true;
        cyc_parent[t.target] = {s, t.symbol};
        cq.push(t.target);
      }
    }
  }
  return std::nullopt;  // unreachable for a live anchor
}

}  // namespace rlv

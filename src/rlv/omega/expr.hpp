#pragma once

// ω-regular expression combinators: every ω-regular language is a finite
// union of U·V^ω with regular U, V (Büchi's theorem); this module provides
// the ω-iteration construction so properties can be built from finite-word
// automata (and hence from the lang/ops.hpp regular operations) without
// writing LTL.

#include "rlv/lang/nfa.hpp"
#include "rlv/omega/buchi.hpp"

namespace rlv {

/// Büchi automaton for L(u)·L(v)^ω. Requires ε ∉ L(v) (asserted). Uses the
/// anchor construction: a distinguished accepting state is entered exactly
/// when one V-word completes, so accepting runs are exactly the
/// u·v₁·v₂·... decompositions.
[[nodiscard]] Buchi omega_iteration(const Nfa& u, const Nfa& v);

/// Büchi automaton for L(v)^ω alone (ε ∉ L(v)).
[[nodiscard]] Buchi omega_power(const Nfa& v);

}  // namespace rlv

#pragma once

// State-based Büchi automata over ω-words, plus generalized Büchi automata
// (used as the intermediate form of the LTL translation and of the
// intersection construction). A Büchi automaton shares the structural
// representation of an Nfa; the `accepting` flags are read as the Büchi
// acceptance set F (a run is accepting iff it visits F infinitely often).
//
// Transition systems in the sense of the paper's Section 6 (finite-state
// systems *without* acceptance) are represented as Büchi automata whose
// states are all accepting — their ω-language is then lim(L) of their
// prefix-closed finite-word language L (see rlv/omega/limit.hpp).

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "rlv/lang/alphabet.hpp"
#include "rlv/lang/nfa.hpp"
#include "rlv/util/bitset.hpp"
#include "rlv/util/budget.hpp"

namespace rlv {

class Buchi {
 public:
  explicit Buchi(AlphabetRef sigma) : aut_(std::move(sigma)) {}

  /// Reinterprets an NFA structure as a Büchi automaton: the NFA's accepting
  /// states become the Büchi acceptance set.
  static Buchi from_structure(Nfa nfa) { return Buchi(std::move(nfa)); }

  [[nodiscard]] const AlphabetRef& alphabet() const { return aut_.alphabet(); }

  State add_state(bool accepting = false) { return aut_.add_state(accepting); }
  void add_transition(State from, Symbol symbol, State to) {
    aut_.add_transition(from, symbol, to);
  }
  void set_initial(State s) { aut_.set_initial(s); }
  void set_accepting(State s, bool accepting = true) {
    aut_.set_accepting(s, accepting);
  }

  [[nodiscard]] std::size_t num_states() const { return aut_.num_states(); }
  [[nodiscard]] std::size_t num_transitions() const {
    return aut_.num_transitions();
  }
  [[nodiscard]] const std::vector<State>& initial() const {
    return aut_.initial();
  }
  [[nodiscard]] bool is_accepting(State s) const {
    return aut_.is_accepting(s);
  }
  [[nodiscard]] std::span<const Transition> out(State s) const {
    return aut_.out(s);
  }
  [[nodiscard]] std::span<const Transition> block(State s, Symbol a) const {
    return aut_.block(s, a);
  }

  /// The underlying finite-word structure. Reading it as an NFA yields the
  /// language of finite words that end in a Büchi-accepting state — rarely
  /// what you want directly; see prefix_nfa() in live.hpp for pre(L_ω).
  [[nodiscard]] const Nfa& structure() const { return aut_; }
  [[nodiscard]] Nfa& structure() { return aut_; }

  [[nodiscard]] std::string to_string() const { return aut_.to_string(); }

 private:
  explicit Buchi(Nfa nfa) : aut_(std::move(nfa)) {}

  Nfa aut_;
};

/// Generalized Büchi automaton: a run is accepting iff it visits every set
/// in `sets` infinitely often. With zero sets every infinite run accepts.
struct GenBuchi {
  explicit GenBuchi(AlphabetRef sigma) : structure(std::move(sigma)) {}

  Nfa structure;                 // accepting flags of `structure` are unused
  std::vector<DynBitset> sets;   // each sized to structure.num_states()
};

/// Degeneralization: counter construction producing an equivalent Büchi
/// automaton with |Q| * (k+1) states for k acceptance sets (k >= 1), or a
/// direct all-accepting copy for k = 0. Each constructed state is charged
/// to `budget` under the caller's current stage.
[[nodiscard]] Buchi degeneralize(const GenBuchi& gba, Budget* budget = nullptr);

}  // namespace rlv

#include "rlv/omega/streett.hpp"

#include <algorithm>
#include <queue>

#include "rlv/util/scc.hpp"

namespace rlv {

StreettAutomaton::StreettAutomaton(Nfa structure)
    : structure_(std::move(structure)) {
  edge_offset_.reserve(structure_.num_states() + 1);
  for (State s = 0; s < structure_.num_states(); ++s) {
    edge_offset_.push_back(static_cast<EdgeId>(edge_source_.size()));
    for (std::uint32_t i = 0; i < structure_.out(s).size(); ++i) {
      edge_source_.push_back(s);
      edge_index_.push_back(i);
    }
  }
  edge_offset_.push_back(static_cast<EdgeId>(edge_source_.size()));
}

namespace {

/// Recursive restriction search. `alive` is the current edge subset; returns
/// the edge set of a fair SCC (every pair vacuous or fulfilled inside it),
/// or nullopt.
std::optional<DynBitset> fair_scc_edges(const StreettAutomaton& a,
                                        const DynBitset& alive) {
  const std::size_t n = a.structure().num_states();

  // SCCs of the subgraph induced by `alive` edges.
  std::vector<std::vector<std::uint32_t>> succ(n);
  alive.for_each([&](std::size_t e) {
    succ[a.edge_source(static_cast<EdgeId>(e))].push_back(
        a.edge(static_cast<EdgeId>(e)).target);
  });
  const SccResult scc = tarjan_scc(succ);

  // Group the alive edges by the SCC they are internal to.
  std::vector<DynBitset> internal(scc.count, a.edge_set());
  std::vector<bool> has_edges(scc.count, false);
  alive.for_each([&](std::size_t e) {
    const EdgeId id = static_cast<EdgeId>(e);
    const std::uint32_t cs = scc.component[a.edge_source(id)];
    if (cs == scc.component[a.edge(id).target]) {
      internal[cs].set(e);
      has_edges[cs] = true;
    }
  });

  for (std::uint32_t c = 0; c < scc.count; ++c) {
    if (!has_edges[c]) continue;  // trivial SCC
    DynBitset edges = internal[c];
    DynBitset removed = a.edge_set();
    bool bad = false;
    for (const StreettPair& pair : a.pairs()) {
      if (pair.antecedent.intersects(edges) && !pair.goal.intersects(edges)) {
        bad = true;
        DynBitset doomed = pair.antecedent;
        doomed &= edges;
        removed |= doomed;
      }
    }
    if (!bad) return edges;
    edges -= removed;
    if (edges.none()) continue;
    if (auto sub = fair_scc_edges(a, edges)) return sub;
  }
  return std::nullopt;
}

/// Is any state of `target_states` reachable from an initial state?
/// Returns a path (word + final state) via BFS over the full structure.
std::optional<std::pair<Word, State>> reach_from_init(
    const Nfa& nfa, const DynBitset& target_states) {
  const std::size_t n = nfa.num_states();
  std::vector<std::pair<State, Symbol>> parent(n, {kNoState, 0});
  std::vector<bool> seen(n, false);
  std::queue<State> queue;
  for (const State s : nfa.initial()) {
    if (!seen[s]) {
      seen[s] = true;
      queue.push(s);
    }
  }
  while (!queue.empty()) {
    const State s = queue.front();
    queue.pop();
    if (target_states.test(s)) {
      Word w;
      for (State v = s; parent[v].first != kNoState; v = parent[v].first) {
        w.push_back(parent[v].second);
      }
      std::reverse(w.begin(), w.end());
      return std::make_pair(std::move(w), s);
    }
    for (const auto& t : nfa.out(s)) {
      if (!seen[t.target]) {
        seen[t.target] = true;
        parent[t.target] = {s, t.symbol};
        queue.push(t.target);
      }
    }
  }
  return std::nullopt;
}

DynBitset states_of_edges(const StreettAutomaton& a, const DynBitset& edges) {
  DynBitset states(a.structure().num_states());
  edges.for_each([&](std::size_t e) {
    states.set(a.edge_source(static_cast<EdgeId>(e)));
    states.set(a.edge(static_cast<EdgeId>(e)).target);
  });
  return states;
}

/// Shortest path between two states using only `edges`; returns the word.
Word path_within(const StreettAutomaton& a, const DynBitset& edges, State from,
                 State to) {
  if (from == to) return {};
  const std::size_t n = a.structure().num_states();
  std::vector<std::pair<State, Symbol>> parent(n, {kNoState, 0});
  std::vector<bool> seen(n, false);
  seen[from] = true;
  std::queue<State> queue;
  queue.push(from);
  while (!queue.empty()) {
    const State s = queue.front();
    queue.pop();
    for (EdgeId e = a.first_edge(s); e < a.first_edge(s + 1); ++e) {
      if (!edges.test(e)) continue;
      const Transition& t = a.edge(e);
      if (seen[t.target]) continue;
      seen[t.target] = true;
      parent[t.target] = {s, t.symbol};
      if (t.target == to) {
        Word w;
        for (State v = to; parent[v].first != kNoState; v = parent[v].first) {
          w.push_back(parent[v].second);
        }
        std::reverse(w.begin(), w.end());
        return w;
      }
      queue.push(t.target);
    }
  }
  return {};  // unreachable within a strongly connected edge set
}

}  // namespace

bool streett_nonempty(const StreettAutomaton& a) {
  return find_fair_lasso(a).has_value();
}

std::optional<Lasso> find_fair_lasso(const StreettAutomaton& a) {
  // Restrict to edges reachable from the initial states.
  const DynBitset reach = a.structure().reachable();
  DynBitset alive = a.edge_set();
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    if (reach.test(a.edge_source(e))) alive.set(e);
  }

  const auto fair = fair_scc_edges(a, alive);
  if (!fair) return std::nullopt;

  const DynBitset scc_states = states_of_edges(a, *fair);
  auto entry = reach_from_init(a.structure(), scc_states);
  if (!entry) return std::nullopt;  // defensive; SCC built from reachable part

  // Build a period that traverses every edge of the fair SCC once: from the
  // entry state, repeatedly path to the next untraversed edge's source, take
  // it, and finally close back to the entry state.
  Word period;
  State at = entry->second;
  std::vector<EdgeId> todo;
  fair->for_each([&](std::size_t e) { todo.push_back(static_cast<EdgeId>(e)); });
  for (const EdgeId e : todo) {
    const Word hop = path_within(a, *fair, at, a.edge_source(e));
    period.insert(period.end(), hop.begin(), hop.end());
    period.push_back(a.edge(e).symbol);
    at = a.edge(e).target;
  }
  const Word back = path_within(a, *fair, at, entry->second);
  period.insert(period.end(), back.begin(), back.end());
  if (period.empty()) return std::nullopt;  // cannot happen: SCC has edges

  return Lasso{std::move(entry->first), std::move(period)};
}

}  // namespace rlv

#pragma once

// Büchi intersection. L_ω ∩ P — the right-hand side of the Lemma 4.3
// characterization — is computed as a generalized-Büchi product (one
// acceptance set per operand) followed by degeneralization. The reachable
// part only is constructed. Each product state (and each degeneralization
// level copy) is charged to the optional Budget under Stage::kProduct.
//
// Both operands must share one alphabet object; std::invalid_argument
// otherwise (the guard survives NDEBUG builds).

#include "rlv/omega/buchi.hpp"
#include "rlv/util/budget.hpp"

namespace rlv {

/// Büchi automaton for L_ω(a) ∩ L_ω(b).
[[nodiscard]] Buchi intersect_buchi(const Buchi& a, const Buchi& b,
                                    Budget* budget = nullptr);

/// Generalized-Büchi product, exposed for tests and for callers that want to
/// keep the two acceptance sets separate.
[[nodiscard]] GenBuchi product_gen(const Buchi& a, const Buchi& b,
                                   Budget* budget = nullptr);

/// Disjoint union: L_ω(a) ∪ L_ω(b).
[[nodiscard]] Buchi union_buchi(const Buchi& a, const Buchi& b);

}  // namespace rlv

#pragma once

// Büchi intersection. L_ω ∩ P — the right-hand side of the Lemma 4.3
// characterization — is computed as a generalized-Büchi product (one
// acceptance set per operand) followed by degeneralization. The reachable
// part only is constructed. Each product state (and each degeneralization
// level copy) is charged to the optional Budget under Stage::kProduct.
//
// OnTheFlyProduct is the lazy counterpart: an n-ary degeneralized product
// whose states are interned and whose successors are expanded only when an
// exploration asks for them. The emptiness search over it (see
// emptiness.hpp: product_empty / find_accepting_lasso_product) therefore
// pays only for the states it actually visits — on satisfied properties the
// nested DFS often finds (or refutes) an accepting cycle after touching a
// fraction of the full product, which the materializing path always builds
// in full.
//
// Both operands must share one alphabet object; std::invalid_argument
// otherwise (the guard survives NDEBUG builds).

#include <span>
#include <vector>

#include "rlv/omega/buchi.hpp"
#include "rlv/util/arena.hpp"
#include "rlv/util/budget.hpp"
#include "rlv/util/intern.hpp"

namespace rlv {

/// Büchi automaton for L_ω(a) ∩ L_ω(b).
[[nodiscard]] Buchi intersect_buchi(const Buchi& a, const Buchi& b,
                                    Budget* budget = nullptr);

/// Generalized-Büchi product, exposed for tests and for callers that want to
/// keep the two acceptance sets separate.
[[nodiscard]] GenBuchi product_gen(const Buchi& a, const Buchi& b,
                                   Budget* budget = nullptr);

/// Disjoint union: L_ω(a) ∪ L_ω(b).
[[nodiscard]] Buchi union_buchi(const Buchi& a, const Buchi& b);

/// Lazy n-ary Büchi intersection with counter-based degeneralization built
/// in: a product state is a tuple of operand states plus a level counter
/// 0..k (k = number of operands); level k is accepting and resets on the
/// next step, matching degeneralize()'s semantics, so the language equals
/// the materialized intersect_buchi chain. States are interned to dense ids
/// on first touch and charged to the Budget under the *caller's current
/// stage* (the emptiness search runs it under Stage::kEmptiness — the lazy
/// path has no separate product stage by construction).
///
/// Memory layout: tuples live k-States-apiece in one flat array keyed by a
/// flat open-addressing id table (util/intern.hpp); cached successor lists
/// are immutable blocks in a bump arena, so out() hands back a span whose
/// storage never moves across later expansions, and the whole product frees
/// wholesale on destruction.
class OnTheFlyProduct {
 public:
  /// `operands` must be non-empty, outlive the product, and share one
  /// alphabet object (std::invalid_argument otherwise).
  OnTheFlyProduct(std::vector<const Buchi*> operands, Budget* budget);

  /// Interned ids of the initial product states.
  [[nodiscard]] const std::vector<State>& initial() const { return initial_; }

  [[nodiscard]] bool is_accepting(State s) const {
    return levels_[s] == operands_.size();
  }

  /// Successors of `s`, expanded on first call and cached. The span stays
  /// valid across later expansions (arena blocks never move).
  [[nodiscard]] std::span<const Transition> out(State s);

  /// Number of product states interned so far (monotone; exploration cost).
  [[nodiscard]] std::size_t num_interned() const { return levels_.size(); }

 private:
  State intern(const State* parts, std::size_t level);
  void expand(State s);

  std::vector<const Buchi*> operands_;
  Budget* budget_;

  // id ↔ (tuple, level): tuple i occupies tuple_data_[i*k .. i*k+k);
  // out_ptr_/out_len_/expanded_ grow in lockstep with levels_.
  std::vector<State> tuple_data_;
  std::vector<std::uint32_t> levels_;
  std::vector<const Transition*> out_ptr_;
  std::vector<std::uint32_t> out_len_;
  std::vector<bool> expanded_;
  std::vector<State> initial_;
  IdTable table_;
  Arena arena_;  // cached successor blocks
};

}  // namespace rlv

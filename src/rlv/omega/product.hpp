#pragma once

// Büchi intersection. L_ω ∩ P — the right-hand side of the Lemma 4.3
// characterization — is computed as a generalized-Büchi product (one
// acceptance set per operand) followed by degeneralization. The reachable
// part only is constructed.

#include "rlv/omega/buchi.hpp"

namespace rlv {

/// Büchi automaton for L_ω(a) ∩ L_ω(b). Both operands must share the same
/// alphabet object.
[[nodiscard]] Buchi intersect_buchi(const Buchi& a, const Buchi& b);

/// Generalized-Büchi product, exposed for tests and for callers that want to
/// keep the two acceptance sets separate.
[[nodiscard]] GenBuchi product_gen(const Buchi& a, const Buchi& b);

/// Disjoint union: L_ω(a) ∪ L_ω(b).
[[nodiscard]] Buchi union_buchi(const Buchi& a, const Buchi& b);

}  // namespace rlv

#include "rlv/omega/reduce.hpp"

#include <algorithm>
#include <vector>

namespace rlv {

std::vector<bool> direct_simulation(const Buchi& a) {
  const std::size_t n = a.num_states();
  const std::size_t sigma = a.alphabet()->size();

  // Per state and symbol: sorted successor list.
  std::vector<std::vector<std::vector<State>>> succ(
      n, std::vector<std::vector<State>>(sigma));
  for (State s = 0; s < n; ++s) {
    for (const auto& t : a.out(s)) succ[s][t.symbol].push_back(t.target);
  }

  // sim[q*n+p]: p simulates q. Initialize with the acceptance condition and
  // refine to the greatest fixpoint.
  std::vector<bool> sim(n * n, false);
  for (State q = 0; q < n; ++q) {
    for (State p = 0; p < n; ++p) {
      sim[q * n + p] = !a.is_accepting(q) || a.is_accepting(p);
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (State q = 0; q < n; ++q) {
      for (State p = 0; p < n; ++p) {
        if (!sim[q * n + p]) continue;
        // Every q-move must be matched by some p-move to a simulator.
        bool ok = true;
        for (Symbol c = 0; c < sigma && ok; ++c) {
          for (const State qt : succ[q][c]) {
            bool matched = false;
            for (const State pt : succ[p][c]) {
              if (sim[qt * n + pt]) {
                matched = true;
                break;
              }
            }
            if (!matched) {
              ok = false;
              break;
            }
          }
        }
        if (!ok) {
          sim[q * n + p] = false;
          changed = true;
        }
      }
    }
  }
  return sim;
}

Buchi reduce_buchi(const Buchi& a) {
  const std::size_t n = a.num_states();
  if (n == 0) return a;
  const std::vector<bool> sim = direct_simulation(a);

  // Equivalence classes of mutual simulation; representative = smallest id.
  std::vector<State> rep(n);
  for (State q = 0; q < n; ++q) {
    rep[q] = q;
    for (State p = 0; p < q; ++p) {
      if (sim[q * n + p] && sim[p * n + q]) {
        rep[q] = rep[p];
        break;
      }
    }
  }

  std::vector<State> remap(n, kNoState);
  Buchi result(a.alphabet());
  for (State q = 0; q < n; ++q) {
    if (rep[q] == q) remap[q] = result.add_state(a.is_accepting(q));
  }

  // Transitions from representatives, with little-brother pruning: drop
  // q --a--> t when some q --a--> t' has t' strictly simulating t.
  for (State q = 0; q < n; ++q) {
    if (rep[q] != q) continue;
    for (Symbol c = 0; c < a.alphabet()->size(); ++c) {
      std::vector<State> targets;
      for (const auto& t : a.out(q)) {
        if (t.symbol == c) targets.push_back(t.target);
      }
      for (const State t : targets) {
        bool dominated = false;
        for (const State other : targets) {
          if (rep[other] == rep[t]) continue;
          if (sim[t * n + other]) {
            dominated = true;
            break;
          }
        }
        if (!dominated) {
          result.structure().add_transition_unique(remap[rep[q]], c,
                                                   remap[rep[t]]);
        }
      }
    }
  }

  // Initial states: keep simulation-maximal representatives.
  std::vector<State> initials;
  for (const State s : a.initial()) initials.push_back(s);
  std::sort(initials.begin(), initials.end());
  initials.erase(std::unique(initials.begin(), initials.end()),
                 initials.end());
  std::vector<State> chosen;
  for (const State s : initials) {
    bool dominated = false;
    for (const State other : initials) {
      if (rep[other] == rep[s]) continue;
      if (sim[s * n + other]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) chosen.push_back(remap[rep[s]]);
  }
  std::sort(chosen.begin(), chosen.end());
  chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
  for (const State s : chosen) result.set_initial(s);
  return result;
}

}  // namespace rlv

#pragma once

// Streett automata with *edge-based* acceptance pairs, and their emptiness
// check (recursive SCC restriction, Emerson–Lei style). A run is accepting
// iff for every pair (E, F): if it traverses an E-edge infinitely often, it
// traverses an F-edge infinitely often.
//
// This is the engine behind strong-fairness reasoning: strong transition
// fairness — "every transition enabled infinitely often is taken infinitely
// often" — is one Streett pair per transition (E = all edges leaving the
// transition's source, F = the transition itself), see rlv/fair/fairness.hpp
// and the validation of Theorem 5.1.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "rlv/lang/nfa.hpp"
#include "rlv/omega/emptiness.hpp"

namespace rlv {

/// Flat edge id: edges are numbered in order of (source state, out index).
using EdgeId = std::uint32_t;

struct StreettPair {
  DynBitset antecedent;  // E: sized to the number of edges
  DynBitset goal;        // F
};

class StreettAutomaton {
 public:
  explicit StreettAutomaton(Nfa structure);

  [[nodiscard]] const Nfa& structure() const { return structure_; }
  [[nodiscard]] std::size_t num_edges() const { return edge_source_.size(); }

  /// Source state / transition of an edge id.
  [[nodiscard]] State edge_source(EdgeId e) const { return edge_source_[e]; }
  [[nodiscard]] const Transition& edge(EdgeId e) const {
    return structure_.out(edge_source_[e])[edge_index_[e]];
  }

  /// First edge id of state `s`; edges of `s` are contiguous.
  [[nodiscard]] EdgeId first_edge(State s) const { return edge_offset_[s]; }

  void add_pair(StreettPair pair) { pairs_.push_back(std::move(pair)); }
  [[nodiscard]] const std::vector<StreettPair>& pairs() const { return pairs_; }

  /// An empty antecedent/goal bitset of the right size, for building pairs.
  [[nodiscard]] DynBitset edge_set() const { return DynBitset(num_edges()); }

 private:
  Nfa structure_;
  std::vector<State> edge_source_;
  std::vector<std::uint32_t> edge_index_;
  std::vector<EdgeId> edge_offset_;
  std::vector<StreettPair> pairs_;
};

/// True when some run from an initial state satisfies every Streett pair.
[[nodiscard]] bool streett_nonempty(const StreettAutomaton& a);

/// A witness lasso whose period traverses every edge of a fair SCC (hence
/// satisfies every pair), when one exists.
[[nodiscard]] std::optional<Lasso> find_fair_lasso(const StreettAutomaton& a);

}  // namespace rlv

#pragma once

// Live states and the prefix language pre(L_ω) of a Büchi automaton.
//
// A state is *live* when some accepting run starts from it. The prefix
// language pre(L_ω(A)) — central to Lemma 4.3 — is the finite-word language
// of A restricted to reachable live states, with every such state accepting.

#include "rlv/lang/nfa.hpp"
#include "rlv/omega/buchi.hpp"

namespace rlv {

/// States from which an accepting run exists (regardless of reachability).
[[nodiscard]] DynBitset live_states(const Buchi& a);

/// Removes states that are unreachable or not live. The ω-language is
/// unchanged. (The paper calls a Büchi automaton in this form "reduced".)
[[nodiscard]] Buchi trim_omega(const Buchi& a);

/// NFA accepting pre(L_ω(A)) = the finite prefixes of accepted ω-words.
[[nodiscard]] Nfa prefix_nfa(const Buchi& a);

/// True when L_ω(A) = ∅ — convenience alias for emptiness via live states.
[[nodiscard]] bool omega_empty(const Buchi& a);

}  // namespace rlv

#include "rlv/omega/buchi.hpp"

namespace rlv {

Buchi degeneralize(const GenBuchi& gba, Budget* budget) {
  const std::size_t n = gba.structure.num_states();
  const std::size_t k = gba.sets.size();

  Buchi result(gba.structure.alphabet());
  if (k == 0) {
    // Every infinite run accepts: mark all states accepting.
    budget_charge(budget, n);
    for (State s = 0; s < n; ++s) result.add_state(true);
    for (State s = 0; s < n; ++s) {
      for (const auto& t : gba.structure.out(s)) {
        result.add_transition(s, t.symbol, t.target);
      }
    }
    for (const State s : gba.structure.initial()) result.set_initial(s);
    return result;
  }

  // State (s, level) means: waiting to see acceptance sets level..k-1; level
  // k is the "all seen" flag level whose states are accepting and reset to
  // level 0 on the next step.
  auto id = [&](State s, std::size_t level) -> State {
    return static_cast<State>(level * n + s);
  };
  for (std::size_t level = 0; level <= k; ++level) {
    budget_charge(budget, n);
    for (State s = 0; s < n; ++s) {
      result.add_state(level == k);
    }
  }
  for (std::size_t level = 0; level <= k; ++level) {
    const std::size_t base = (level == k) ? 0 : level;
    for (State s = 0; s < n; ++s) {
      for (const auto& t : gba.structure.out(s)) {
        // Advance through every set the *target* state satisfies, starting
        // from `base` (state-based sets: membership of the visited state).
        std::size_t next_level = base;
        while (next_level < k && gba.sets[next_level].test(t.target)) {
          ++next_level;
        }
        result.add_transition(id(s, level), t.symbol, id(t.target, next_level));
      }
    }
  }
  for (const State s : gba.structure.initial()) {
    // The initial level accounts for sets the initial state itself satisfies.
    std::size_t level = 0;
    while (level < k && gba.sets[level].test(s)) ++level;
    result.set_initial(id(s, level));
  }
  return result;
}

}  // namespace rlv

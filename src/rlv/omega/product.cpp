#include "rlv/omega/product.hpp"

#include <unordered_map>
#include <utility>
#include <vector>

#include "rlv/util/hash.hpp"

namespace rlv {

GenBuchi product_gen(const Buchi& a, const Buchi& b, Budget* budget) {
  require_same_alphabet(a.alphabet(), b.alphabet(), "product_gen");
  StageScope scope(budget, Stage::kProduct);
  GenBuchi result(a.alphabet());

  std::unordered_map<std::pair<State, State>, State, PairHash> ids;
  std::vector<std::pair<State, State>> worklist;
  std::vector<std::pair<State, State>> states;
  auto intern = [&](State p, State q) -> State {
    auto [it, inserted] = ids.emplace(std::make_pair(p, q), kNoState);
    if (inserted) {
      budget_charge(budget);
      it->second = result.structure.add_state(false);
      worklist.emplace_back(p, q);
      states.emplace_back(p, q);
    }
    return it->second;
  };

  for (const State p : a.initial()) {
    for (const State q : b.initial()) {
      result.structure.set_initial(intern(p, q));
    }
  }
  while (!worklist.empty()) {
    const auto [p, q] = worklist.back();
    worklist.pop_back();
    const State from = ids.at({p, q});
    for (const auto& ta : a.out(p)) {
      for (const auto& tb : b.out(q)) {
        if (ta.symbol != tb.symbol) continue;
        result.structure.add_transition(from, ta.symbol,
                                        intern(ta.target, tb.target));
      }
    }
  }

  const std::size_t n = result.structure.num_states();
  DynBitset fa(n);
  DynBitset fb(n);
  for (State s = 0; s < n; ++s) {
    if (a.is_accepting(states[s].first)) fa.set(s);
    if (b.is_accepting(states[s].second)) fb.set(s);
  }
  result.sets.push_back(std::move(fa));
  result.sets.push_back(std::move(fb));
  return result;
}

Buchi intersect_buchi(const Buchi& a, const Buchi& b, Budget* budget) {
  StageScope scope(budget, Stage::kProduct);
  return degeneralize(product_gen(a, b, budget), budget);
}

Buchi union_buchi(const Buchi& a, const Buchi& b) {
  require_same_alphabet(a.alphabet(), b.alphabet(), "union_buchi");
  Buchi result(a.alphabet());
  for (State s = 0; s < a.num_states(); ++s) {
    result.add_state(a.is_accepting(s));
  }
  const State offset = static_cast<State>(a.num_states());
  for (State s = 0; s < b.num_states(); ++s) {
    result.add_state(b.is_accepting(s));
  }
  for (State s = 0; s < a.num_states(); ++s) {
    for (const auto& t : a.out(s)) result.add_transition(s, t.symbol, t.target);
  }
  for (State s = 0; s < b.num_states(); ++s) {
    for (const auto& t : b.out(s)) {
      result.add_transition(offset + s, t.symbol, offset + t.target);
    }
  }
  for (const State s : a.initial()) result.set_initial(s);
  for (const State s : b.initial()) result.set_initial(offset + s);
  return result;
}

}  // namespace rlv

#include "rlv/omega/product.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rlv/util/hash.hpp"

namespace rlv {

GenBuchi product_gen(const Buchi& a, const Buchi& b, Budget* budget) {
  require_same_alphabet(a.alphabet(), b.alphabet(), "product_gen");
  StageScope scope(budget, Stage::kProduct);
  GenBuchi result(a.alphabet());

  std::unordered_map<std::pair<State, State>, State, PairHash> ids;
  std::vector<std::pair<State, State>> worklist;
  std::vector<std::pair<State, State>> states;
  auto intern = [&](State p, State q) -> State {
    auto [it, inserted] = ids.emplace(std::make_pair(p, q), kNoState);
    if (inserted) {
      budget_charge(budget);
      it->second = result.structure.add_state(false);
      worklist.emplace_back(p, q);
      states.emplace_back(p, q);
    }
    return it->second;
  };

  for (const State p : a.initial()) {
    for (const State q : b.initial()) {
      result.structure.set_initial(intern(p, q));
    }
  }
  while (!worklist.empty()) {
    const auto [p, q] = worklist.back();
    worklist.pop_back();
    const State from = ids.at({p, q});
    for (const auto& ta : a.out(p)) {
      for (const auto& tb : b.out(q)) {
        if (ta.symbol != tb.symbol) continue;
        result.structure.add_transition(from, ta.symbol,
                                        intern(ta.target, tb.target));
      }
    }
  }

  const std::size_t n = result.structure.num_states();
  DynBitset fa(n);
  DynBitset fb(n);
  for (State s = 0; s < n; ++s) {
    if (a.is_accepting(states[s].first)) fa.set(s);
    if (b.is_accepting(states[s].second)) fb.set(s);
  }
  result.sets.push_back(std::move(fa));
  result.sets.push_back(std::move(fb));
  return result;
}

Buchi intersect_buchi(const Buchi& a, const Buchi& b, Budget* budget) {
  StageScope scope(budget, Stage::kProduct);
  return degeneralize(product_gen(a, b, budget), budget);
}

OnTheFlyProduct::OnTheFlyProduct(std::vector<const Buchi*> operands,
                                 Budget* budget)
    : operands_(std::move(operands)), budget_(budget) {
  if (operands_.empty()) {
    throw std::invalid_argument("OnTheFlyProduct: no operands");
  }
  for (const Buchi* op : operands_) {
    require_same_alphabet(operands_.front()->alphabet(), op->alphabet(),
                          "OnTheFlyProduct");
  }

  const std::size_t k = operands_.size();
  // Cartesian product of the operands' initial states; the initial level
  // accounts for acceptance sets the initial tuple itself satisfies,
  // mirroring degeneralize().
  std::vector<State> tuple(k);
  std::vector<std::size_t> idx(k, 0);
  for (;;) {
    bool valid = true;
    for (std::size_t i = 0; i < k; ++i) {
      const auto& inits = operands_[i]->initial();
      if (idx[i] >= inits.size()) {
        valid = false;
        break;
      }
      tuple[i] = inits[idx[i]];
    }
    if (!valid) break;  // some operand has no initial state: empty product
    std::size_t level = 0;
    while (level < k && operands_[level]->is_accepting(tuple[level])) ++level;
    const State id = intern(tuple, level);
    if (std::find(initial_.begin(), initial_.end(), id) == initial_.end()) {
      initial_.push_back(id);
    }
    // Odometer over the initial-state lists.
    std::size_t i = 0;
    while (i < k && ++idx[i] == operands_[i]->initial().size()) {
      idx[i] = 0;
      ++i;
    }
    if (i == k) break;
  }
}

State OnTheFlyProduct::intern(std::vector<State> parts, std::size_t level) {
  std::size_t h = level;
  for (const State s : parts) h = hash_combine(h, s);
  std::vector<State>& bucket = buckets_[h];
  for (const State id : bucket) {
    if (levels_[id] == level && tuples_[id] == parts) return id;
  }
  budget_charge(budget_);
  const State id = static_cast<State>(tuples_.size());
  tuples_.push_back(std::move(parts));
  levels_.push_back(level);
  out_.emplace_back();
  expanded_.push_back(false);
  bucket.push_back(id);
  return id;
}

void OnTheFlyProduct::expand(State s) {
  const std::size_t k = operands_.size();
  const std::vector<State> tuple = tuples_[s];  // copy: intern() reallocates
  const std::size_t base = (levels_[s] == k) ? 0 : levels_[s];

  // Join the operands' transitions symbol by symbol: start from operand 0's
  // edges and extend one operand at a time, keeping only matching symbols.
  std::vector<std::vector<State>> partial;
  for (const auto& t0 : operands_[0]->out(tuple[0])) {
    partial.assign(1, {t0.target});
    std::vector<std::vector<State>> next;
    for (std::size_t i = 1; i < k && !partial.empty(); ++i) {
      next.clear();
      for (const auto& ti : operands_[i]->out(tuple[i])) {
        if (ti.symbol != t0.symbol) continue;
        for (const std::vector<State>& p : partial) {
          std::vector<State> ext = p;
          ext.push_back(ti.target);
          next.push_back(std::move(ext));
        }
      }
      partial.swap(next);
    }
    for (std::vector<State>& targets : partial) {
      std::size_t next_level = base;
      while (next_level < k &&
             operands_[next_level]->is_accepting(targets[next_level])) {
        ++next_level;
      }
      const State to = intern(std::move(targets), next_level);
      out_[s].push_back(Transition{t0.symbol, to});
    }
  }
  expanded_[s] = true;
}

const std::vector<Transition>& OnTheFlyProduct::out(State s) {
  if (!expanded_[s]) expand(s);
  return out_[s];
}

Buchi union_buchi(const Buchi& a, const Buchi& b) {
  require_same_alphabet(a.alphabet(), b.alphabet(), "union_buchi");
  Buchi result(a.alphabet());
  for (State s = 0; s < a.num_states(); ++s) {
    result.add_state(a.is_accepting(s));
  }
  const State offset = static_cast<State>(a.num_states());
  for (State s = 0; s < b.num_states(); ++s) {
    result.add_state(b.is_accepting(s));
  }
  for (State s = 0; s < a.num_states(); ++s) {
    for (const auto& t : a.out(s)) result.add_transition(s, t.symbol, t.target);
  }
  for (State s = 0; s < b.num_states(); ++s) {
    for (const auto& t : b.out(s)) {
      result.add_transition(offset + s, t.symbol, offset + t.target);
    }
  }
  for (const State s : a.initial()) result.set_initial(s);
  for (const State s : b.initial()) result.set_initial(offset + s);
  return result;
}

}  // namespace rlv

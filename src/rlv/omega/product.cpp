#include "rlv/omega/product.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rlv/util/hash.hpp"

namespace rlv {

GenBuchi product_gen(const Buchi& a, const Buchi& b, Budget* budget) {
  require_same_alphabet(a.alphabet(), b.alphabet(), "product_gen");
  StageScope scope(budget, Stage::kProduct);
  GenBuchi result(a.alphabet());

  std::unordered_map<std::pair<State, State>, State, PairHash> ids;
  std::vector<std::pair<State, State>> worklist;
  std::vector<std::pair<State, State>> states;
  auto intern = [&](State p, State q) -> State {
    auto [it, inserted] = ids.emplace(std::make_pair(p, q), kNoState);
    if (inserted) {
      budget_charge(budget);
      it->second = result.structure.add_state(false);
      worklist.emplace_back(p, q);
      states.emplace_back(p, q);
    }
    return it->second;
  };

  for (const State p : a.initial()) {
    for (const State q : b.initial()) {
      result.structure.set_initial(intern(p, q));
    }
  }
  while (!worklist.empty()) {
    const auto [p, q] = worklist.back();
    worklist.pop_back();
    const State from = ids.at({p, q});
    for (const auto& ta : a.out(p)) {
      for (const auto& tb : b.out(q)) {
        if (ta.symbol != tb.symbol) continue;
        result.structure.add_transition(from, ta.symbol,
                                        intern(ta.target, tb.target));
      }
    }
  }

  const std::size_t n = result.structure.num_states();
  DynBitset fa(n);
  DynBitset fb(n);
  for (State s = 0; s < n; ++s) {
    if (a.is_accepting(states[s].first)) fa.set(s);
    if (b.is_accepting(states[s].second)) fb.set(s);
  }
  result.sets.push_back(std::move(fa));
  result.sets.push_back(std::move(fb));
  return result;
}

Buchi intersect_buchi(const Buchi& a, const Buchi& b, Budget* budget) {
  StageScope scope(budget, Stage::kProduct);
  return degeneralize(product_gen(a, b, budget), budget);
}

OnTheFlyProduct::OnTheFlyProduct(std::vector<const Buchi*> operands,
                                 Budget* budget)
    : operands_(std::move(operands)), budget_(budget) {
  if (operands_.empty()) {
    throw std::invalid_argument("OnTheFlyProduct: no operands");
  }
  for (const Buchi* op : operands_) {
    require_same_alphabet(operands_.front()->alphabet(), op->alphabet(),
                          "OnTheFlyProduct");
    op->structure().finalize();  // CSR index before per-symbol block joins
  }

  const std::size_t k = operands_.size();
  // Cartesian product of the operands' initial states; the initial level
  // accounts for acceptance sets the initial tuple itself satisfies,
  // mirroring degeneralize().
  std::vector<State> tuple(k);
  std::vector<std::size_t> idx(k, 0);
  for (;;) {
    bool valid = true;
    for (std::size_t i = 0; i < k; ++i) {
      const auto& inits = operands_[i]->initial();
      if (idx[i] >= inits.size()) {
        valid = false;
        break;
      }
      tuple[i] = inits[idx[i]];
    }
    if (!valid) break;  // some operand has no initial state: empty product
    std::size_t level = 0;
    while (level < k && operands_[level]->is_accepting(tuple[level])) ++level;
    const State id = intern(tuple.data(), level);
    if (std::find(initial_.begin(), initial_.end(), id) == initial_.end()) {
      initial_.push_back(id);
    }
    // Odometer over the initial-state lists.
    std::size_t i = 0;
    while (i < k && ++idx[i] == operands_[i]->initial().size()) {
      idx[i] = 0;
      ++i;
    }
    if (i == k) break;
  }
}

State OnTheFlyProduct::intern(const State* parts, std::size_t level) {
  const std::size_t k = operands_.size();
  std::size_t h = level;
  for (std::size_t i = 0; i < k; ++i) h = hash_combine(h, parts[i]);

  auto eq = [&](State id) {
    if (levels_[id] != level) return false;
    const State* stored = tuple_data_.data() + static_cast<std::size_t>(id) * k;
    for (std::size_t i = 0; i < k; ++i) {
      if (stored[i] != parts[i]) return false;
    }
    return true;
  };
  const State found = table_.find(h, eq);
  if (found != IdTable::kNoId) return found;

  budget_charge(budget_);
  const State id = static_cast<State>(levels_.size());
  tuple_data_.insert(tuple_data_.end(), parts, parts + k);
  levels_.push_back(static_cast<std::uint32_t>(level));
  out_ptr_.push_back(nullptr);
  out_len_.push_back(0);
  expanded_.push_back(false);
  table_.insert(h, id, [&](State x) {
    const State* stored = tuple_data_.data() + static_cast<std::size_t>(x) * k;
    std::size_t hx = levels_[x];
    for (std::size_t i = 0; i < k; ++i) hx = hash_combine(hx, stored[i]);
    return hx;
  });
  budget_note_memory(budget_,
                     arena_.bytes_reserved() + table_.bytes() +
                         tuple_data_.capacity() * sizeof(State));
  return id;
}

void OnTheFlyProduct::expand(State s) {
  const std::size_t k = operands_.size();
  // Copy: intern() appends to tuple_data_ while we read the tuple.
  std::vector<State> tuple(
      tuple_data_.begin() + static_cast<std::size_t>(s) * k,
      tuple_data_.begin() + static_cast<std::size_t>(s) * k + k);
  const std::size_t base = (levels_[s] == k) ? 0 : levels_[s];

  // Operand edges arrive grouped by symbol (CSR), so the join is an odometer
  // over the per-operand (state, symbol) successor blocks — no per-edge
  // symbol filtering and no intermediate tuple vectors.
  std::vector<Transition> edges;
  std::vector<std::span<const Transition>> blocks(k);
  std::vector<std::size_t> idx(k);
  std::vector<State> targets(k);
  const std::span<const Transition> e0 = operands_[0]->out(tuple[0]);
  for (std::size_t i0 = 0; i0 < e0.size();) {
    const Symbol sym = e0[i0].symbol;
    std::size_t end0 = i0;
    while (end0 < e0.size() && e0[end0].symbol == sym) ++end0;
    blocks[0] = e0.subspan(i0, end0 - i0);
    i0 = end0;

    bool joinable = true;
    for (std::size_t i = 1; i < k; ++i) {
      blocks[i] = operands_[i]->block(tuple[i], sym);
      if (blocks[i].empty()) {
        joinable = false;
        break;
      }
    }
    if (!joinable) continue;

    std::fill(idx.begin(), idx.end(), 0);
    for (;;) {
      for (std::size_t i = 0; i < k; ++i) targets[i] = blocks[i][idx[i]].target;
      std::size_t next_level = base;
      while (next_level < k &&
             operands_[next_level]->is_accepting(targets[next_level])) {
        ++next_level;
      }
      edges.push_back(Transition{sym, intern(targets.data(), next_level)});
      std::size_t i = 0;
      while (i < k && ++idx[i] == blocks[i].size()) {
        idx[i] = 0;
        ++i;
      }
      if (i == k) break;
    }
  }

  out_len_[s] = static_cast<std::uint32_t>(edges.size());
  out_ptr_[s] =
      edges.empty() ? nullptr : arena_.copy_array(edges.data(), edges.size());
  expanded_[s] = true;
}

std::span<const Transition> OnTheFlyProduct::out(State s) {
  if (!expanded_[s]) expand(s);
  return {out_ptr_[s], out_len_[s]};
}

Buchi union_buchi(const Buchi& a, const Buchi& b) {
  require_same_alphabet(a.alphabet(), b.alphabet(), "union_buchi");
  Buchi result(a.alphabet());
  for (State s = 0; s < a.num_states(); ++s) {
    result.add_state(a.is_accepting(s));
  }
  const State offset = static_cast<State>(a.num_states());
  for (State s = 0; s < b.num_states(); ++s) {
    result.add_state(b.is_accepting(s));
  }
  for (State s = 0; s < a.num_states(); ++s) {
    for (const auto& t : a.out(s)) result.add_transition(s, t.symbol, t.target);
  }
  for (State s = 0; s < b.num_states(); ++s) {
    for (const auto& t : b.out(s)) {
      result.add_transition(offset + s, t.symbol, offset + t.target);
    }
  }
  for (const State s : a.initial()) result.set_initial(s);
  for (const State s : b.initial()) result.set_initial(offset + s);
  return result;
}

}  // namespace rlv

#include "rlv/omega/complement.hpp"

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace rlv {

namespace {

// A complement state: ranking (-1 = undefined / state absent) plus the
// obligation set, encoded into one vector for map keys (O bits appended).
using Key = std::vector<std::int32_t>;

struct Builder {
  const Buchi& a;
  std::size_t n;
  std::int32_t max_rank;
  Buchi result;
  std::map<Key, State> ids;
  std::vector<Key> pending;
  State sink = kNoState;
  Budget* budget;

  explicit Builder(const Buchi& input, Budget* b)
      : a(input),
        n(input.num_states()),
        max_rank(static_cast<std::int32_t>(2 * input.num_states())),
        result(input.alphabet()),
        budget(b) {}

  State intern(const Key& key) {
    auto [it, inserted] = ids.emplace(key, kNoState);
    if (inserted) {
      budget_charge(budget);
      // Accepting iff the obligation set (second half of the key) is empty.
      bool obligations = false;
      for (std::size_t q = 0; q < n; ++q) {
        obligations = obligations || (key[n + q] != 0);
      }
      it->second = result.add_state(!obligations);
      pending.push_back(key);
    }
    return it->second;
  }

  State accepting_sink() {
    if (sink == kNoState) {
      sink = result.add_state(true);
      for (Symbol c = 0; c < a.alphabet()->size(); ++c) {
        result.add_transition(sink, c, sink);
      }
    }
    return sink;
  }

  /// Enumerates all successor rankings of `key` under `symbol` and adds the
  /// corresponding transitions.
  void expand(const Key& key, Symbol symbol) {
    const State from = ids.at(key);

    // Successor domain and per-state rank bounds.
    std::vector<std::int32_t> bound(n, -1);
    bool any = false;
    for (std::size_t q = 0; q < n; ++q) {
      if (key[q] < 0) continue;
      for (const auto& t : a.out(static_cast<State>(q))) {
        if (t.symbol != symbol) continue;
        any = true;
        if (bound[t.target] < 0 || key[q] < bound[t.target]) {
          bound[t.target] = key[q];
        }
      }
    }
    if (!any) {
      // No run survives: every continuation is outside L(a).
      result.add_transition(from, symbol, accepting_sink());
      return;
    }

    // Obligation propagation: states reached from O under `symbol`.
    DynBitset o_next(n);
    bool o_empty = true;
    for (std::size_t q = 0; q < n; ++q) {
      if (key[n + q] == 0) continue;
      o_empty = false;
      for (const auto& t : a.out(static_cast<State>(q))) {
        if (t.symbol == symbol) o_next.set(t.target);
      }
    }

    // Recursive enumeration of rankings g with g(q') in [0, bound(q')],
    // even on accepting states.
    std::vector<std::size_t> domain;
    for (std::size_t q = 0; q < n; ++q) {
      if (bound[q] >= 0) domain.push_back(q);
    }
    Key g(2 * n, -1);
    for (std::size_t q = 0; q < n; ++q) g[n + q] = 0;

    auto emit = [&]() {
      // O' = (O nonempty ? δ(O) : D') restricted to even-g states.
      for (std::size_t q = 0; q < n; ++q) g[n + q] = 0;
      for (const std::size_t q : domain) {
        if (g[q] % 2 != 0) continue;
        const bool carried = o_empty ? true : o_next.test(q);
        if (carried) g[n + q] = 1;
      }
      result.add_transition(from, symbol, intern(g));
    };

    // Iterative odometer over the domain ranks.
    std::vector<std::int32_t> step(domain.size());
    for (std::size_t i = 0; i < domain.size(); ++i) {
      const std::size_t q = domain[i];
      g[q] = 0;
      step[i] = a.is_accepting(static_cast<State>(q)) ? 2 : 1;
    }
    while (true) {
      budget_tick(budget);
      emit();
      std::size_t i = 0;
      for (; i < domain.size(); ++i) {
        const std::size_t q = domain[i];
        g[q] += step[i];
        if (g[q] <= bound[q]) break;
        g[q] = 0;
      }
      if (i == domain.size()) break;
    }
  }
};

}  // namespace

Buchi complement_buchi(const Buchi& a, Budget* budget) {
  StageScope scope(budget, Stage::kComplement);
  Builder b(a, budget);

  Key init(2 * a.num_states(), -1);
  for (std::size_t q = 0; q < a.num_states(); ++q) init[a.num_states() + q] = 0;
  bool has_initial = false;
  for (const State q : a.initial()) {
    init[q] = b.max_rank;
    has_initial = true;
  }
  if (!has_initial) {
    // L(a) = ∅: complement is Σ^ω.
    Buchi all(a.alphabet());
    const State s = all.add_state(true);
    for (Symbol c = 0; c < a.alphabet()->size(); ++c) {
      all.add_transition(s, c, s);
    }
    all.set_initial(s);
    return all;
  }
  b.result.set_initial(b.intern(init));

  while (!b.pending.empty()) {
    const Key key = std::move(b.pending.back());
    b.pending.pop_back();
    for (Symbol c = 0; c < a.alphabet()->size(); ++c) {
      b.expand(key, c);
    }
  }
  return std::move(b.result);
}

}  // namespace rlv

#pragma once

// Complementation of nondeterministic Büchi automata via the rank-based
// construction of Kupferman & Vardi. Needed when a property P is given as an
// automaton (not a formula) and the relative-safety check (Lemma 4.4)
// requires ¬P. Exponential by necessity; fine for the moderate property
// automata of this library's use cases.

#include "rlv/omega/buchi.hpp"
#include "rlv/util/budget.hpp"

namespace rlv {

/// Büchi automaton for Σ^ω \ L_ω(a).
///
/// States are pairs (f, O) of a level ranking f : Q → {0..2n} ∪ {⊥} (odd
/// ranks forbidden on accepting states) and an obligation set O of
/// even-ranked states; a run accepts iff O empties infinitely often. Words
/// all of whose runs die are routed to an accepting sink.
///
/// This is the most explosive construction in the library (2^O(n log n)
/// states); pass a Budget to bound it. Each interned complement state is
/// charged under Stage::kComplement and the ranking odometer ticks the
/// deadline, so a ResourceExhausted escape is prompt even when a single
/// expand() enumerates many rankings.
[[nodiscard]] Buchi complement_buchi(const Buchi& a, Budget* budget = nullptr);

}  // namespace rlv

#pragma once

// Complementation of nondeterministic Büchi automata via the rank-based
// construction of Kupferman & Vardi. Needed when a property P is given as an
// automaton (not a formula) and the relative-safety check (Lemma 4.4)
// requires ¬P. Exponential by necessity; fine for the moderate property
// automata of this library's use cases.

#include "rlv/omega/buchi.hpp"

namespace rlv {

/// Büchi automaton for Σ^ω \ L_ω(a).
///
/// States are pairs (f, O) of a level ranking f : Q → {0..2n} ∪ {⊥} (odd
/// ranks forbidden on accepting states) and an obligation set O of
/// even-ranked states; a run accepts iff O empties infinitely often. Words
/// all of whose runs die are routed to an accepting sink.
[[nodiscard]] Buchi complement_buchi(const Buchi& a);

}  // namespace rlv

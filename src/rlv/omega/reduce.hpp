#pragma once

// Simulation-based size reduction of Büchi automata. Direct simulation
// (Dill–Hu–Wong-Toi style): state p simulates q when p is accepting
// whenever q is, and every move of q can be matched by a move of p into a
// simulating state. Quotienting by mutual direct simulation preserves the
// ω-language exactly; little-brother transitions (a-moves to a state
// strictly simulated by another a-successor of the same source) can be
// pruned on top.
//
// Applied to the GPVW output before products, this shrinks the automata the
// relative liveness/safety checkers work on (bench_reduction quantifies by
// how much).

#include "rlv/omega/buchi.hpp"

namespace rlv {

/// The direct-simulation preorder: result[q*n + p] iff p simulates q.
/// Computed by greatest-fixpoint refinement in O(n^2 · m) time.
[[nodiscard]] std::vector<bool> direct_simulation(const Buchi& a);

/// Quotient by mutual direct simulation, with little-brother edge pruning.
/// The ω-language is unchanged.
[[nodiscard]] Buchi reduce_buchi(const Buchi& a);

}  // namespace rlv

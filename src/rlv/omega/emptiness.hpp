#pragma once

// Büchi emptiness checking and accepting-lasso extraction. Two independent
// implementations — SCC-based (Tarjan) and the nested depth-first search of
// Courcoubetis–Vardi–Wolper–Yannakakis — cross-checked in tests and compared
// in bench_emptiness (experiment E12).

#include <optional>
#include <utility>

#include "rlv/lang/alphabet.hpp"
#include "rlv/omega/buchi.hpp"
#include "rlv/util/budget.hpp"

namespace rlv {

/// An ultimately periodic ω-word u·v^ω as a (prefix, period) pair; the
/// period `v` is never empty for a valid lasso.
struct Lasso {
  Word prefix;
  Word period;
};

enum class EmptinessAlgorithm {
  kScc,
  kNestedDfs,
};

/// True when L_ω(a) = ∅. Linear in the automaton, but the automaton handed
/// in is often a product/complement blow-up, so the search loops still tick
/// the optional Budget's deadline under Stage::kEmptiness.
[[nodiscard]] bool buchi_empty(
    const Buchi& a, EmptinessAlgorithm algorithm = EmptinessAlgorithm::kScc,
    Budget* budget = nullptr);

/// An accepted lasso u·v^ω when the language is non-empty.
[[nodiscard]] std::optional<Lasso> find_accepting_lasso(
    const Buchi& a, Budget* budget = nullptr);

}  // namespace rlv

#pragma once

// Büchi emptiness checking and accepting-lasso extraction. Two independent
// implementations — SCC-based (Tarjan) and the nested depth-first search of
// Courcoubetis–Vardi–Wolper–Yannakakis — cross-checked in tests and compared
// in bench_emptiness (experiment E12).

#include <optional>
#include <utility>
#include <vector>

#include "rlv/lang/alphabet.hpp"
#include "rlv/omega/buchi.hpp"
#include "rlv/omega/product.hpp"
#include "rlv/util/budget.hpp"

namespace rlv {

/// An ultimately periodic ω-word u·v^ω as a (prefix, period) pair; the
/// period `v` is never empty for a valid lasso.
struct Lasso {
  Word prefix;
  Word period;
};

enum class EmptinessAlgorithm {
  kScc,
  kNestedDfs,
};

/// True when L_ω(a) = ∅. Linear in the automaton, but the automaton handed
/// in is often a product/complement blow-up, so the search loops still tick
/// the optional Budget's deadline under Stage::kEmptiness.
[[nodiscard]] bool buchi_empty(
    const Buchi& a, EmptinessAlgorithm algorithm = EmptinessAlgorithm::kScc,
    Budget* budget = nullptr);

/// An accepted lasso u·v^ω when the language is non-empty.
[[nodiscard]] std::optional<Lasso> find_accepting_lasso(
    const Buchi& a, Budget* budget = nullptr);

/// On-the-fly emptiness of L_ω(op₁) ∩ … ∩ L_ω(opₙ): nested DFS (CVWY) over
/// an OnTheFlyProduct, so only the product states the search visits are ever
/// constructed — the materialized intersect_buchi chain always builds the
/// full reachable product first. Returns an accepted lasso of the
/// intersection when non-empty. The lasso is a genuine member of the
/// intersection but, being DFS-extracted, is generally NOT the shortest one
/// find_accepting_lasso would return on the materialized product —
/// cross-validate by revalidation, not comparison. Product states are
/// charged to `budget` under Stage::kEmptiness.
[[nodiscard]] std::optional<Lasso> find_accepting_lasso_product(
    const std::vector<const Buchi*>& operands, Budget* budget = nullptr);

/// True when the intersection of the operands' ω-languages is empty.
[[nodiscard]] bool product_empty(const std::vector<const Buchi*>& operands,
                                 Budget* budget = nullptr);

}  // namespace rlv

#include "rlv/omega/limit.hpp"

#include <stdexcept>

#include "rlv/lang/ops.hpp"
#include "rlv/omega/live.hpp"

namespace rlv {

Buchi limit_of_prefix_closed(const Nfa& nfa) {
  // All states accepting => the Büchi language is the set of words with an
  // infinite run; trim_omega removes states without infinite continuation.
  Nfa structure = trim(nfa);
  for (State s = 0; s < structure.num_states(); ++s) {
    if (!structure.is_accepting(s)) {
      // An assert here would vanish under NDEBUG and silently compute
      // lim of the wrong language; lim(L) = L^ω-limit only needs the
      // all-accepting reading for prefix-closed L.
      throw std::invalid_argument(
          "limit_of_prefix_closed: automaton has a trimmed non-accepting "
          "state; use limit_general for non-prefix-closed languages");
    }
    structure.set_accepting(s, true);
  }
  return trim_omega(Buchi::from_structure(std::move(structure)));
}

Buchi limit_via_determinization(const Nfa& nfa) {
  const Dfa dfa = determinize(nfa);
  return limit_general(dfa.to_nfa());
}

Buchi limit_general(const Nfa& nfa) {
  // For deterministic automata, x ∈ lim(L) iff the unique run of x passes
  // through accepting states infinitely often — a Büchi condition. (This
  // equivalence needs determinism; hence the subset construction first.)
  const Dfa dfa = determinize(nfa);
  return trim_omega(Buchi::from_structure(dfa.to_nfa()));
}

}  // namespace rlv

#include "rlv/omega/limit.hpp"

#include <cassert>

#include "rlv/lang/ops.hpp"
#include "rlv/omega/live.hpp"

namespace rlv {

Buchi limit_of_prefix_closed(const Nfa& nfa) {
  // All states accepting => the Büchi language is the set of words with an
  // infinite run; trim_omega removes states without infinite continuation.
  Nfa structure = trim(nfa);
  for (State s = 0; s < structure.num_states(); ++s) {
    assert(structure.is_accepting(s) &&
           "limit_of_prefix_closed expects an all-accepting automaton");
    structure.set_accepting(s, true);
  }
  return trim_omega(Buchi::from_structure(std::move(structure)));
}

Buchi limit_via_determinization(const Nfa& nfa) {
  const Dfa dfa = determinize(nfa);
  return limit_general(dfa.to_nfa());
}

Buchi limit_general(const Nfa& nfa) {
  // For deterministic automata, x ∈ lim(L) iff the unique run of x passes
  // through accepting states infinitely often — a Büchi condition. (This
  // equivalence needs determinism; hence the subset construction first.)
  const Dfa dfa = determinize(nfa);
  return trim_omega(Buchi::from_structure(dfa.to_nfa()));
}

}  // namespace rlv

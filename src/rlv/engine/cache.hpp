#pragma once

// Concurrent memoization cache for the query engine. Each cache maps a
// structural key (see fingerprint.hpp) to a shared, immutable value —
// a parsed system, an LTL translation, a trimmed pre(L_ω) automaton, or a
// final verdict. Guarantees:
//
//   * compute-once: concurrent requests for the same key run the compute
//     function exactly once; the losers block on a shared_future and get
//     the winner's value (so a batch of identical queries does the
//     expensive automaton construction a single time even across threads);
//   * values are shared_ptr<const V> — handed out without copying and kept
//     alive by the caller even if the entry is evicted meanwhile;
//   * bounded size with least-recently-used eviction once `capacity`
//     resident entries exist (in-flight computations are never evicted).
//     Eviction is O(1): resident entries are threaded on an intrusive LRU
//     list per shard (unordered_map nodes are pointer-stable, so the list
//     links straight into the map's entries — no second allocation and no
//     full-table scan to find a victim);
//   * sharded locking: the key hash picks one of `shards` (a power of
//     two) independent {mutex, map, LRU} shards, so a warm serving
//     workload's lookups — most of them hits — only contend when they
//     land on the same shard. `capacity` stays the *total* across shards;
//     the single-shard default is bit-compatible with the historical
//     whole-cache LRU order (the MemoCache unit tests pin that down);
//   * hit/miss/coalesced/eviction counters, aggregated into EngineStats.
//     Counters are relaxed atomics bumped under the shard lock but read
//     without it, so a `stats` snapshot never stalls a worker mid-lookup.
//     A hit means the value was resident; a lookup that lands on an entry
//     whose computation is still in flight is counted as `coalesced`, not
//     as a hit — the caller still waits roughly as long as the computing
//     thread, so folding those into hits overstated cache effectiveness
//     under contention.

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace rlv {

struct CacheCounters {
  std::uint64_t hits = 0;       // resident value returned immediately
  std::uint64_t coalesced = 0;  // joined an in-flight computation
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  CacheCounters& operator+=(const CacheCounters& o) {
    hits += o.hits;
    coalesced += o.coalesced;
    misses += o.misses;
    evictions += o.evictions;
    return *this;
  }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class MemoCache {
 public:
  /// `capacity` bounds the TOTAL resident entries across all shards;
  /// `shards` is rounded up to a power of two. With the default single
  /// shard the eviction order is exactly the classic whole-cache LRU.
  explicit MemoCache(std::size_t capacity, std::size_t shards = 1) {
    std::size_t rounded = 1;
    while (rounded < shards && rounded < kMaxShards) rounded <<= 1;
    shard_mask_ = rounded - 1;
    // Distribute the budget; every shard gets at least one slot so a
    // tiny capacity with many shards still caches (it may then hold up
    // to `shards` entries total — capacity is a bound per shard).
    shard_capacity_ = (capacity + rounded - 1) / rounded;
    if (shard_capacity_ == 0) shard_capacity_ = 1;
    shards_.reserve(rounded);
    for (std::size_t i = 0; i < rounded; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  MemoCache(const MemoCache&) = delete;
  MemoCache& operator=(const MemoCache&) = delete;

  /// Returns the cached value for `key`, computing it with `fn` on a miss.
  /// `fn` is invoked outside the cache lock; exceptions propagate to every
  /// waiter and the entry is removed so a later call can retry.
  template <typename Fn>
  std::shared_ptr<const Value> get_or_compute(const Key& key, Fn&& fn) {
    Shard& shard = shard_for(key);
    std::promise<std::shared_ptr<const Value>> promise;
    std::shared_future<std::shared_ptr<const Value>> future;
    bool inserted = false;
    {
      std::lock_guard lock(shard.mutex);
      auto it = shard.entries.find(key);
      if (it != shard.entries.end()) {
        Entry& entry = it->second;
        if (entry.resident) {
          shard.hits.fetch_add(1, std::memory_order_relaxed);
          lru_move_back(shard, &entry);
        } else {
          shard.coalesced.fetch_add(1, std::memory_order_relaxed);
        }
        future = entry.future;
      } else {
        shard.misses.fetch_add(1, std::memory_order_relaxed);
        future = promise.get_future().share();
        auto [pos, ok] = shard.entries.emplace(key, Entry{});
        pos->second.future = future;
        pos->second.key = &pos->first;
        inserted = true;
      }
    }
    if (!inserted) return future.get();

    try {
      auto value = std::make_shared<const Value>(fn());
      promise.set_value(value);
      std::lock_guard lock(shard.mutex);
      auto it = shard.entries.find(key);
      if (it != shard.entries.end()) {
        it->second.resident = true;
        lru_push_back(shard, &it->second);
        evict_locked(shard);
      }
      return value;
    } catch (...) {
      promise.set_exception(std::current_exception());
      std::lock_guard lock(shard.mutex);
      shard.entries.erase(key);  // never entered the LRU list
      throw;
    }
  }

  /// Lock-free counter snapshot (each field relaxed — the totals are
  /// monotone and a snapshot mid-lookup is fine for observability).
  [[nodiscard]] CacheCounters counters() const {
    CacheCounters total;
    for (const auto& shard : shards_) {
      total.hits += shard->hits.load(std::memory_order_relaxed);
      total.coalesced += shard->coalesced.load(std::memory_order_relaxed);
      total.misses += shard->misses.load(std::memory_order_relaxed);
      total.evictions += shard->evictions.load(std::memory_order_relaxed);
    }
    return total;
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard lock(shard->mutex);
      total += shard->entries.size();
    }
    return total;
  }

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

 private:
  static constexpr std::size_t kMaxShards = 64;

  struct Entry {
    std::shared_future<std::shared_ptr<const Value>> future;
    bool resident = false;  // value ready; only resident entries are evicted
    // Intrusive LRU links (resident entries only). unordered_map is
    // node-based, so Entry* and the key pointer survive rehash; `key`
    // lets eviction erase by key without a reverse lookup structure.
    Entry* lru_prev = nullptr;
    Entry* lru_next = nullptr;
    const Key* key = nullptr;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, Entry, Hash> entries;
    Entry* lru_head = nullptr;  // least recently used resident entry
    Entry* lru_tail = nullptr;  // most recently used
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> coalesced{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> evictions{0};
  };

  [[nodiscard]] Shard& shard_for(const Key& key) const {
    // The map's bucket index uses the low bits of the same hash; fold the
    // high bits in so shard choice and bucket choice decorrelate.
    const std::size_t h = Hash{}(key);
    return *shards_[(h ^ (h >> 16) ^ (h >> 32)) & shard_mask_];
  }

  static void lru_unlink(Shard& shard, Entry* entry) {
    (entry->lru_prev ? entry->lru_prev->lru_next : shard.lru_head) =
        entry->lru_next;
    (entry->lru_next ? entry->lru_next->lru_prev : shard.lru_tail) =
        entry->lru_prev;
    entry->lru_prev = entry->lru_next = nullptr;
  }

  static void lru_push_back(Shard& shard, Entry* entry) {
    entry->lru_prev = shard.lru_tail;
    entry->lru_next = nullptr;
    (shard.lru_tail ? shard.lru_tail->lru_next : shard.lru_head) = entry;
    shard.lru_tail = entry;
  }

  static void lru_move_back(Shard& shard, Entry* entry) {
    if (shard.lru_tail == entry) return;
    lru_unlink(shard, entry);
    lru_push_back(shard, entry);
  }

  void evict_locked(Shard& shard) {
    while (shard.entries.size() > shard_capacity_ && shard.lru_head) {
      Entry* victim = shard.lru_head;  // in-flight entries are never listed
      lru_unlink(shard, victim);
      shard.entries.erase(*victim->key);
      shard.evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shard_mask_ = 0;
  std::size_t shard_capacity_ = 0;
};

}  // namespace rlv

#pragma once

// Concurrent memoization cache for the query engine. Each cache maps a
// structural key (see fingerprint.hpp) to a shared, immutable value —
// a parsed system, an LTL translation, a trimmed pre(L_ω) automaton, or a
// final verdict. Guarantees:
//
//   * compute-once: concurrent requests for the same key run the compute
//     function exactly once; the losers block on a shared_future and get
//     the winner's value (so a batch of identical queries does the
//     expensive automaton construction a single time even across threads);
//   * values are shared_ptr<const V> — handed out without copying and kept
//     alive by the caller even if the entry is evicted meanwhile;
//   * bounded size with least-recently-used eviction once `capacity`
//     resident entries exist (in-flight computations are never evicted);
//   * hit/miss/coalesced/eviction counters, aggregated into EngineStats. A
//     hit means the value was resident; a lookup that lands on an entry
//     whose computation is still in flight is counted as `coalesced`, not
//     as a hit — the caller still waits roughly as long as the computing
//     thread, so folding those into hits overstated cache effectiveness
//     under contention.

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace rlv {

struct CacheCounters {
  std::uint64_t hits = 0;       // resident value returned immediately
  std::uint64_t coalesced = 0;  // joined an in-flight computation
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  CacheCounters& operator+=(const CacheCounters& o) {
    hits += o.hits;
    coalesced += o.coalesced;
    misses += o.misses;
    evictions += o.evictions;
    return *this;
  }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class MemoCache {
 public:
  explicit MemoCache(std::size_t capacity) : capacity_(capacity) {}

  MemoCache(const MemoCache&) = delete;
  MemoCache& operator=(const MemoCache&) = delete;

  /// Returns the cached value for `key`, computing it with `fn` on a miss.
  /// `fn` is invoked outside the cache lock; exceptions propagate to every
  /// waiter and the entry is removed so a later call can retry.
  template <typename Fn>
  std::shared_ptr<const Value> get_or_compute(const Key& key, Fn&& fn) {
    std::promise<std::shared_ptr<const Value>> promise;
    std::shared_future<std::shared_ptr<const Value>> future;
    bool inserted = false;
    {
      std::lock_guard lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        ++(it->second.resident ? counters_.hits : counters_.coalesced);
        it->second.last_used = ++tick_;
        future = it->second.future;
      } else {
        ++counters_.misses;
        future = promise.get_future().share();
        entries_.emplace(key, Entry{future, ++tick_, /*resident=*/false});
        inserted = true;
      }
    }
    if (!inserted) return future.get();

    try {
      auto value = std::make_shared<const Value>(fn());
      promise.set_value(value);
      std::lock_guard lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end()) it->second.resident = true;
      evict_locked();
      return value;
    } catch (...) {
      promise.set_exception(std::current_exception());
      std::lock_guard lock(mutex_);
      entries_.erase(key);
      throw;
    }
  }

  [[nodiscard]] CacheCounters counters() const {
    std::lock_guard lock(mutex_);
    return counters_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return entries_.size();
  }

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<const Value>> future;
    std::uint64_t last_used = 0;
    bool resident = false;  // value ready; only resident entries are evicted
  };

  void evict_locked() {
    while (entries_.size() > capacity_) {
      auto victim = entries_.end();
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (!it->second.resident) continue;
        if (victim == entries_.end() ||
            it->second.last_used < victim->second.last_used) {
          victim = it;
        }
      }
      if (victim == entries_.end()) return;  // everything in flight
      entries_.erase(victim);
      ++counters_.evictions;
    }
  }

  mutable std::mutex mutex_;
  std::unordered_map<Key, Entry, Hash> entries_;
  CacheCounters counters_;
  std::uint64_t tick_ = 0;
  std::size_t capacity_;
};

}  // namespace rlv

#pragma once

// Fixed-size thread pool with a FIFO work queue — the execution substrate
// of the query engine. Deliberately minimal: submit() enqueues a task,
// wait_idle() blocks until every submitted task has finished, and the
// destructor drains the queue before joining. Tasks must not throw (the
// engine catches per-query exceptions and folds them into the Verdict).
//
// With zero workers the pool degrades to synchronous execution: submit()
// runs the task inline. That mode is what makes `Engine` with jobs=1
// bit-identical to a plain sequential loop and keeps single-threaded
// callers free of any thread overhead.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rlv {

class ThreadPool {
 public:
  /// Spawns `num_workers` threads; 0 means run tasks inline on submit().
  explicit ThreadPool(std::size_t num_workers);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }

  /// Enqueues a task (runs it inline when the pool has no workers).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace rlv

#include "rlv/engine/fingerprint.hpp"

#include "rlv/util/hash.hpp"

namespace rlv {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t h, std::string_view bytes) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (8 * i)) & 0xffU;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t fingerprint_text(std::string_view text) {
  return fnv1a(kFnvOffset, text);
}

std::uint64_t fingerprint_nfa(const Nfa& nfa) {
  std::uint64_t h = kFnvOffset;
  const auto& sigma = *nfa.alphabet();
  h = fnv1a(h, static_cast<std::uint64_t>(sigma.size()));
  for (Symbol a = 0; a < sigma.size(); ++a) {
    h = fnv1a(h, sigma.name(a));
    h = fnv1a(h, std::string_view("\0", 1));  // unambiguous name separator
  }
  h = fnv1a(h, static_cast<std::uint64_t>(nfa.num_states()));
  for (const State s : nfa.initial()) h = fnv1a(h, s);
  for (State s = 0; s < nfa.num_states(); ++s) {
    h = fnv1a(h, static_cast<std::uint64_t>(nfa.is_accepting(s)));
    for (const Transition& t : nfa.out(s)) {
      h = fnv1a(h, (static_cast<std::uint64_t>(s) << 32) | t.symbol);
      h = fnv1a(h, t.target);
    }
  }
  return h;
}

std::uint64_t fingerprint_buchi(const Buchi& buchi) {
  // Tag so that an NFA and a Büchi automaton with identical structure do
  // not collide in a shared key space.
  return hash_combine(fingerprint_nfa(buchi.structure()), 0xb00c1ULL);
}

}  // namespace rlv

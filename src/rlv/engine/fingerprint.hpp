#pragma once

// Structural fingerprints used as cache keys by the query engine. A
// fingerprint is a 64-bit hash of everything that determines a check's
// outcome: for an automaton that is the alphabet (names, in id order), the
// state count, the initial and accepting sets, and every transition; for a
// formula it is the interned node pointer (hash-consing makes pointer
// identity coincide with structural identity within a process).
//
// Keys are hashes, not the structures themselves, so two distinct inputs
// could in principle collide; with a 64-bit state and the avalanche mixing
// of hash_combine the probability is negligible for realistic workloads
// (the same trade-off the subset-construction memo tables already make).

#include <cstdint>
#include <string_view>

#include "rlv/lang/nfa.hpp"
#include "rlv/omega/buchi.hpp"

namespace rlv {

/// Fingerprint of raw text (e.g. an unparsed system file).
[[nodiscard]] std::uint64_t fingerprint_text(std::string_view text);

/// Structural fingerprint of an NFA, including its alphabet's names.
[[nodiscard]] std::uint64_t fingerprint_nfa(const Nfa& nfa);

/// Structural fingerprint of a Büchi automaton (same walk over the
/// underlying structure; acceptance is read as the Büchi set).
[[nodiscard]] std::uint64_t fingerprint_buchi(const Buchi& buchi);

}  // namespace rlv

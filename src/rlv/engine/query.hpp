#pragma once

// Query and verdict types for the batch verification engine. A Query is
// self-contained text — the system in the rlv/io format and the property as
// a PLTL formula — so that batches can be shipped over a wire or a file
// without sharing in-memory objects; the engine's caches recover all
// sharing (identical system text parses once, identical formulas translate
// once per alphabet).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "rlv/engine/cache.hpp"
#include "rlv/lang/alphabet.hpp"
#include "rlv/omega/emptiness.hpp"

namespace rlv {

/// Which decision procedure to run (the modes of `rlv_check`).
enum class CheckKind : std::uint8_t {
  kRelativeLiveness,  // Lemma 4.3: pre(L_ω) ⊆ pre(L_ω ∩ P)
  kRelativeSafety,    // Lemma 4.4: L_ω ∩ lim(pre(L_ω ∩ P)) ⊆ P
  kSatisfaction,      // classical L_ω ⊆ P
  kFairStrong,        // all strongly transition-fair runs satisfy P
  kFairWeak,          // all weakly (justice) fair runs satisfy P
};

/// Parses the rlv_check-style mode names: rl, rs, sat, fair, fairweak.
[[nodiscard]] std::optional<CheckKind> parse_check_kind(std::string_view name);

/// Inverse of parse_check_kind.
[[nodiscard]] std::string_view check_kind_name(CheckKind kind);

struct Query {
  std::string system;   // system text in the rlv/io format
  std::string formula;  // PLTL formula text
  CheckKind kind = CheckKind::kRelativeLiveness;
};

struct Verdict {
  /// The check's boolean outcome; meaningless when `error` is set.
  bool holds = false;
  /// Relative liveness violation: a doomed prefix.
  std::optional<Word> violating_prefix;
  /// Relative safety / fairness violation: a lasso behavior.
  std::optional<Lasso> counterexample;
  /// Nonempty when the query failed (parse error, bad formula, ...).
  std::string error;
  /// Wall-clock time this query spent executing (including cache lookups).
  double millis = 0.0;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Counter snapshot of every engine cache plus batch totals.
struct EngineStats {
  CacheCounters systems;       // text → parsed Nfa
  CacheCounters behaviors;     // system → lim(L) Büchi automaton
  CacheCounters prefixes;      // system → trimmed pre(L_ω) NFA
  CacheCounters translations;  // (formula, alphabet, polarity) → Büchi
  CacheCounters verdicts;      // (system, formula, kind) → Verdict
  std::uint64_t queries_run = 0;

  [[nodiscard]] CacheCounters total() const {
    CacheCounters t;
    t += systems;
    t += behaviors;
    t += prefixes;
    t += translations;
    t += verdicts;
    return t;
  }
};

}  // namespace rlv

#pragma once

// Query and verdict types for the batch verification engine. A Query is
// self-contained text — the system in the rlv/io format and the property as
// a PLTL formula or a Büchi automaton — so that batches can be shipped over
// a wire or a file without sharing in-memory objects; the engine's caches
// recover all sharing (identical system text parses once, identical
// formulas translate once per alphabet, identical property automata parse
// and remap once per alphabet).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include <vector>

#include "rlv/engine/cache.hpp"
#include "rlv/lang/alphabet.hpp"
#include "rlv/lang/inclusion.hpp"
#include "rlv/monitor/automaton.hpp"
#include "rlv/omega/emptiness.hpp"
#include "rlv/util/budget.hpp"

namespace rlv {

/// Which decision procedure to run (the modes of `rlv_check`).
enum class CheckKind : std::uint8_t {
  kRelativeLiveness,  // Lemma 4.3: pre(L_ω) ⊆ pre(L_ω ∩ P)
  kRelativeSafety,    // Lemma 4.4: L_ω ∩ lim(pre(L_ω ∩ P)) ⊆ P
  kSatisfaction,      // classical L_ω ⊆ P
  kFairStrong,        // all strongly transition-fair runs satisfy P
  kFairWeak,          // all weakly (justice) fair runs satisfy P
};

/// Parses the rlv_check-style mode names: rl, rs, sat, fair, fairweak.
[[nodiscard]] std::optional<CheckKind> parse_check_kind(std::string_view name);

/// Inverse of parse_check_kind.
[[nodiscard]] std::string_view check_kind_name(CheckKind kind);

/// Parses the inclusion algorithm names: subset, antichain.
[[nodiscard]] std::optional<InclusionAlgorithm> parse_inclusion_algorithm(
    std::string_view name);

/// Inverse of parse_inclusion_algorithm.
[[nodiscard]] std::string_view inclusion_algorithm_name(
    InclusionAlgorithm algorithm);

struct Query {
  std::string system;   // system text in the rlv/io format
  std::string formula;  // PLTL formula text (ignored with property_automaton)
  CheckKind kind = CheckKind::kRelativeLiveness;
  /// When nonempty: the property as Büchi-automaton text (rlv/io format,
  /// parse_buchi), remapped onto the system's alphabet by symbol name; the
  /// formula is then ignored. The rs/sat/fair flavors go through rank-based
  /// complementation — exponential; budget accordingly.
  std::string property_automaton = {};
  /// Algorithm for the Lemma 4.3 prefix-inclusion check. Part of the
  /// verdict cache key: queries differing only here never alias.
  InclusionAlgorithm algorithm = InclusionAlgorithm::kAntichain;
  /// Worker threads for the parallel inclusion search inside this query;
  /// 0 = use EngineOptions::intra_query_threads. NOT part of the verdict
  /// cache key — every thread count computes the same verdict (see
  /// engine.hpp on counterexample canonicality).
  std::size_t threads = 0;
  /// Per-query budget overrides for the serving path: nonzero replaces the
  /// engine-wide EngineOptions default for this query only. The rlv::net
  /// server clamps client-supplied values to its caps before submission.
  /// Like `threads`, NOT part of the verdict cache key — exhausted verdicts
  /// are never cached, so budgets cannot alias outcomes.
  std::uint64_t timeout_ms = 0;
  std::uint64_t max_states = 0;
  /// Request-level certification opt-in, ORed with
  /// EngineOptions::certify_verdicts: a query can strengthen the engine's
  /// policy but never weaken it (a certify=false request must not push an
  /// unvalidated verdict into a cache that certified clients share).
  /// Certification happens at compute time, so a cache hit serves the
  /// verdict as validated (or not) when it was first computed.
  bool certify = false;
};

struct Verdict {
  /// The check's boolean outcome; meaningless when `error` is set or the
  /// budget was exhausted.
  bool holds = false;
  /// Relative liveness violation: a doomed prefix.
  std::optional<Word> violating_prefix;
  /// Relative safety / fairness violation: a lasso behavior.
  std::optional<Lasso> counterexample;
  /// Nonempty when the query failed (parse error, bad formula, ...).
  std::string error;
  /// True when the per-query budget tripped before a verdict was reached;
  /// `exhausted_stage` then names the pipeline stage that was running.
  /// Exhausted verdicts are never cached, so a retry with a larger budget
  /// recomputes.
  bool resource_exhausted = false;
  std::string exhausted_stage;
  /// Wall-clock time this query spent executing (including cache lookups).
  double millis = 0.0;
  /// Per-stage counters and exclusive timings for this query. Stages served
  /// from cache contribute (almost) nothing — the profile measures work
  /// actually done, which is what a capacity planner needs.
  QueryProfile profile;

  [[nodiscard]] bool ok() const {
    return error.empty() && !resource_exhausted;
  }
};

/// What to monitor: the streaming counterpart of Query. A spec identifies
/// a (system, property) pair only — compilation happens once per distinct
/// spec (the engine's monitor-automaton cache), after which any number of
/// sessions step the shared compiled table.
struct MonitorSpec {
  std::string system;   // system text in the rlv/io format
  std::string formula;  // PLTL formula text (ignored with property_automaton)
  /// When nonempty: the property as Büchi-automaton text (see Query).
  std::string property_automaton = {};
  /// Validate a doomed-prefix witness per doomed state with rlv::cert at
  /// compile time; doom responses then report witness_certified. Part of
  /// the automaton cache key (a certified compile is a stronger artifact).
  bool certify = false;
};

struct MonitorOpenResult {
  /// Session id for subsequent step/close calls; 0 when the open failed.
  std::uint64_t session = 0;
  /// Verdict of the empty trace (kDoomed/kLeftSystem for degenerate specs).
  monitor::Verdict verdict = monitor::Verdict::kSatisfiable;
  bool certified = false;
  /// The global session table is at its cap — the deterministic overload
  /// signal, distinct from an error.
  bool table_full = false;
  bool resource_exhausted = false;
  std::string exhausted_stage;
  std::string error;  // parse/compile failure; empty on success
  double millis = 0.0;

  [[nodiscard]] bool ok() const {
    return error.empty() && !table_full && !resource_exhausted;
  }
};

struct MonitorStepResult {
  monitor::Verdict verdict = monitor::Verdict::kSatisfiable;
  /// Total events this session has consumed (including this batch).
  std::uint64_t events = 0;
  /// Index within THIS batch where the verdict left kSatisfiable, if it
  /// did here; `transition_doomed` tells doom apart from leaving the
  /// system.
  std::optional<std::size_t> transition_index;
  bool transition_doomed = false;
  /// On a doom transition: the automaton's canonical shortest doomed
  /// prefix reaching the same state, as action names (the residual of a
  /// DFA state is independent of the path taken to it).
  std::vector<std::string> witness;
  bool witness_certified = false;
  /// Error code: "unknown_session", "unknown_action", "event_cap". A batch
  /// with any bad action is rejected whole — no partial application.
  std::string error;
  std::string error_detail;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

struct MonitorCloseResult {
  bool closed = false;
  std::uint64_t events = 0;  // total events the session consumed
  std::string error;         // "unknown_session" or empty

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Session-table and stepping totals since engine construction.
struct MonitorCounters {
  std::uint64_t sessions_open = 0;
  std::uint64_t sessions_peak = 0;
  std::uint64_t sessions_opened = 0;
  std::uint64_t idle_reclaimed = 0;
  std::uint64_t steps = 0;  // events consumed across all sessions
  std::uint64_t dooms = 0;  // live -> doomed transitions observed
};

/// Counter snapshot of every engine cache plus batch totals.
struct EngineStats {
  CacheCounters systems;       // text → parsed Nfa
  CacheCounters behaviors;     // system → lim(L) Büchi automaton
  CacheCounters prefixes;      // system → trimmed pre(L_ω) NFA
  CacheCounters translations;  // (formula, alphabet, polarity) → Büchi
  CacheCounters properties;    // (automaton text, alphabet) → remapped Büchi
  CacheCounters verdicts;      // (system, property, kind, algo) → Verdict
  CacheCounters monitors;      // (system, property, certify) → MonitorAutomaton
  MonitorCounters monitor;     // session table + stepping totals
  std::uint64_t queries_run = 0;
  /// Certificate validations performed on negative verdicts before caching
  /// (EngineOptions::certify_verdicts). A nonzero `certificates_failed`
  /// means a kernel produced a witness the independent checker rejected —
  /// the corresponding verdicts were reported as errors, never cached.
  std::uint64_t certificates_checked = 0;
  std::uint64_t certificates_failed = 0;
  /// Sum of every executed query's per-stage profile.
  QueryProfile stages;

  [[nodiscard]] CacheCounters total() const {
    CacheCounters t;
    t += systems;
    t += behaviors;
    t += prefixes;
    t += translations;
    t += properties;
    t += verdicts;
    t += monitors;
    return t;
  }
};

}  // namespace rlv

#include "rlv/engine/engine.hpp"

#include <atomic>
#include <chrono>
#include <exception>

#include "rlv/engine/fingerprint.hpp"
#include "rlv/engine/thread_pool.hpp"
#include "rlv/fair/fair_check.hpp"
#include "rlv/io/format.hpp"
#include "rlv/lang/inclusion.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/emptiness.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/omega/live.hpp"
#include "rlv/omega/product.hpp"
#include "rlv/util/hash.hpp"

namespace rlv {

std::optional<CheckKind> parse_check_kind(std::string_view name) {
  if (name == "rl") return CheckKind::kRelativeLiveness;
  if (name == "rs") return CheckKind::kRelativeSafety;
  if (name == "sat") return CheckKind::kSatisfaction;
  if (name == "fair") return CheckKind::kFairStrong;
  if (name == "fairweak") return CheckKind::kFairWeak;
  return std::nullopt;
}

std::string_view check_kind_name(CheckKind kind) {
  switch (kind) {
    case CheckKind::kRelativeLiveness:
      return "rl";
    case CheckKind::kRelativeSafety:
      return "rs";
    case CheckKind::kSatisfaction:
      return "sat";
    case CheckKind::kFairStrong:
      return "fair";
    case CheckKind::kFairWeak:
      return "fairweak";
  }
  return "?";
}

namespace {

struct ParsedSystem {
  Nfa nfa;
  std::uint64_t fingerprint;  // structural, not text: see fingerprint.hpp
};

struct TranslationKey {
  const void* formula;    // interned node — canonical per process
  const void* alphabet;   // alphabet identity ties symbols to the system
  bool negated;

  friend bool operator==(const TranslationKey&, const TranslationKey&) =
      default;
};

struct TranslationKeyHash {
  std::size_t operator()(const TranslationKey& k) const {
    std::size_t h = std::hash<const void*>{}(k.formula);
    h = hash_combine(h, std::hash<const void*>{}(k.alphabet));
    return hash_combine(h, k.negated ? 1 : 0);
  }
};

struct VerdictKey {
  std::uint64_t system;  // structural fingerprint
  const void* formula;   // interned node
  CheckKind kind;

  friend bool operator==(const VerdictKey&, const VerdictKey&) = default;
};

struct VerdictKeyHash {
  std::size_t operator()(const VerdictKey& k) const {
    std::size_t h = std::hash<std::uint64_t>{}(k.system);
    h = hash_combine(h, std::hash<const void*>{}(k.formula));
    return hash_combine(h, static_cast<std::size_t>(k.kind));
  }
};

}  // namespace

struct Engine::Impl {
  explicit Impl(const EngineOptions& options)
      : systems(options.cache_capacity),
        behaviors(options.cache_capacity),
        prefixes(options.cache_capacity),
        translations(options.cache_capacity),
        verdicts(options.cache_capacity * 8),
        pool(options.jobs <= 1 ? 0 : options.jobs) {}

  MemoCache<std::uint64_t, ParsedSystem> systems;
  MemoCache<std::uint64_t, Buchi> behaviors;
  MemoCache<std::uint64_t, Nfa> prefixes;
  MemoCache<TranslationKey, Buchi, TranslationKeyHash> translations;
  MemoCache<VerdictKey, Verdict, VerdictKeyHash> verdicts;
  ThreadPool pool;
  std::atomic<std::uint64_t> queries_run{0};

  std::shared_ptr<const Buchi> translation(Formula f, const Labeling& lambda,
                                           bool negated) {
    const TranslationKey key{f.raw(), lambda.alphabet().get(), negated};
    return translations.get_or_compute(key, [&] {
      return negated ? translate_ltl_negated(f, lambda)
                     : translate_ltl(f, lambda);
    });
  }

  /// The decision procedures of rlv/core/relative.hpp and
  /// rlv/fair/fair_check.hpp, restated over the cached intermediates. Every
  /// derived object is built from the *cached* behaviors automaton so that
  /// alphabet identity (which intersect_buchi and check_inclusion assert)
  /// is preserved even when two different texts parse to one structure.
  Verdict decide(const std::shared_ptr<const ParsedSystem>& sys, Formula f,
                 CheckKind kind) {
    const auto behaviors_aut = behaviors.get_or_compute(
        sys->fingerprint, [&] { return limit_of_prefix_closed(sys->nfa); });
    const Labeling lambda = Labeling::canonical(behaviors_aut->alphabet());

    Verdict verdict;
    switch (kind) {
      case CheckKind::kRelativeLiveness: {
        // Lemma 4.3: pre(L_ω) ⊆ pre(L_ω ∩ P); ⊇ always holds.
        const auto property = translation(f, lambda, /*negated=*/false);
        const Buchi intersection = intersect_buchi(*behaviors_aut, *property);
        const Nfa pre_both = prefix_nfa(intersection);
        const auto pre_system = prefixes.get_or_compute(
            sys->fingerprint, [&] { return prefix_nfa(*behaviors_aut); });
        const InclusionResult inc = check_inclusion(
            *pre_system, pre_both, InclusionAlgorithm::kAntichain);
        verdict.holds = inc.included;
        verdict.violating_prefix = inc.counterexample;
        break;
      }
      case CheckKind::kRelativeSafety: {
        // Lemma 4.4: L_ω ∩ lim(pre(L_ω ∩ P)) ∩ ¬P = ∅.
        const auto property = translation(f, lambda, /*negated=*/false);
        const auto negated = translation(f, lambda, /*negated=*/true);
        const Buchi intersection = intersect_buchi(*behaviors_aut, *property);
        const Buchi closure =
            limit_of_prefix_closed(prefix_nfa(intersection));
        const Buchi bad = intersect_buchi(
            intersect_buchi(*behaviors_aut, closure), *negated);
        auto lasso = find_accepting_lasso(bad);
        verdict.holds = !lasso.has_value();
        verdict.counterexample = std::move(lasso);
        break;
      }
      case CheckKind::kSatisfaction: {
        const auto negated = translation(f, lambda, /*negated=*/true);
        verdict.holds =
            omega_empty(intersect_buchi(*behaviors_aut, *negated));
        break;
      }
      case CheckKind::kFairStrong:
      case CheckKind::kFairWeak: {
        const auto negated = translation(f, lambda, /*negated=*/true);
        const FairCheckResult res = check_fair_satisfaction_negated(
            *behaviors_aut, *negated,
            kind == CheckKind::kFairStrong ? FairnessKind::kStrongTransition
                                           : FairnessKind::kWeakTransition);
        verdict.holds = res.all_fair_runs_satisfy;
        verdict.counterexample = res.counterexample;
        break;
      }
    }
    return verdict;
  }

  Verdict run_one(const Query& query) {
    const auto start = std::chrono::steady_clock::now();
    queries_run.fetch_add(1, std::memory_order_relaxed);
    Verdict verdict;
    try {
      const auto sys = systems.get_or_compute(
          fingerprint_text(query.system), [&] {
            Nfa nfa = parse_system(query.system);
            const std::uint64_t fp = fingerprint_nfa(nfa);
            return ParsedSystem{std::move(nfa), fp};
          });
      const Formula f = parse_ltl(query.formula);
      const VerdictKey key{sys->fingerprint, f.raw(), query.kind};
      verdict = *verdicts.get_or_compute(
          key, [&] { return decide(sys, f, query.kind); });
    } catch (const std::exception& e) {
      verdict = Verdict{};
      verdict.error = e.what();
    }
    verdict.millis =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    return verdict;
  }
};

Engine::Engine(EngineOptions options)
    : impl_(std::make_unique<Impl>(options)) {}

Engine::~Engine() = default;

std::vector<Verdict> Engine::run(const std::vector<Query>& queries) {
  std::vector<Verdict> results(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    impl_->pool.submit(
        [this, &queries, &results, i] { results[i] = impl_->run_one(queries[i]); });
  }
  impl_->pool.wait_idle();
  return results;
}

Verdict Engine::run_one(const Query& query) { return impl_->run_one(query); }

EngineStats Engine::stats() const {
  EngineStats stats;
  stats.systems = impl_->systems.counters();
  stats.behaviors = impl_->behaviors.counters();
  stats.prefixes = impl_->prefixes.counters();
  stats.translations = impl_->translations.counters();
  stats.verdicts = impl_->verdicts.counters();
  stats.queries_run = impl_->queries_run.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace rlv

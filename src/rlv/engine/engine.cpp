#include "rlv/engine/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>

#include "rlv/cert/certificate.hpp"
#include "rlv/engine/fingerprint.hpp"
#include "rlv/engine/thread_pool.hpp"
#include "rlv/fair/fair_check.hpp"
#include "rlv/io/format.hpp"
#include "rlv/lang/inclusion.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/complement.hpp"
#include "rlv/omega/emptiness.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/omega/live.hpp"
#include "rlv/omega/product.hpp"
#include "rlv/util/hash.hpp"

namespace rlv {

std::optional<CheckKind> parse_check_kind(std::string_view name) {
  if (name == "rl") return CheckKind::kRelativeLiveness;
  if (name == "rs") return CheckKind::kRelativeSafety;
  if (name == "sat") return CheckKind::kSatisfaction;
  if (name == "fair") return CheckKind::kFairStrong;
  if (name == "fairweak") return CheckKind::kFairWeak;
  return std::nullopt;
}

std::string_view check_kind_name(CheckKind kind) {
  switch (kind) {
    case CheckKind::kRelativeLiveness:
      return "rl";
    case CheckKind::kRelativeSafety:
      return "rs";
    case CheckKind::kSatisfaction:
      return "sat";
    case CheckKind::kFairStrong:
      return "fair";
    case CheckKind::kFairWeak:
      return "fairweak";
  }
  return "?";
}

std::optional<InclusionAlgorithm> parse_inclusion_algorithm(
    std::string_view name) {
  if (name == "subset") return InclusionAlgorithm::kSubset;
  if (name == "antichain") return InclusionAlgorithm::kAntichain;
  return std::nullopt;
}

std::string_view inclusion_algorithm_name(InclusionAlgorithm algorithm) {
  switch (algorithm) {
    case InclusionAlgorithm::kSubset:
      return "subset";
    case InclusionAlgorithm::kAntichain:
      return "antichain";
  }
  return "?";
}

namespace {

struct ParsedSystem {
  Nfa nfa;
  std::uint64_t fingerprint;  // structural, not text: see fingerprint.hpp
};

/// A property automaton parsed and remapped onto one system alphabet.
struct ParsedProperty {
  Buchi automaton;
  std::uint64_t fingerprint;  // structural, of the remapped automaton
};

struct TranslationKey {
  const void* formula;    // interned node — canonical per process
  const void* alphabet;   // alphabet identity ties symbols to the system
  bool negated;

  friend bool operator==(const TranslationKey&, const TranslationKey&) =
      default;
};

struct TranslationKeyHash {
  std::size_t operator()(const TranslationKey& k) const {
    std::size_t h = std::hash<const void*>{}(k.formula);
    h = hash_combine(h, std::hash<const void*>{}(k.alphabet));
    return hash_combine(h, k.negated ? 1 : 0);
  }
};

struct PropertyKey {
  std::uint64_t text;     // fingerprint of the raw automaton text
  const void* alphabet;   // target alphabet identity

  friend bool operator==(const PropertyKey&, const PropertyKey&) = default;
};

struct PropertyKeyHash {
  std::size_t operator()(const PropertyKey& k) const {
    return hash_combine(std::hash<std::uint64_t>{}(k.text),
                        std::hash<const void*>{}(k.alphabet));
  }
};

/// The verdict key carries everything that determines a check's outcome
/// *and presentation*: the inclusion algorithm is part of the key because
/// subset and antichain report different (both correct) counterexample
/// words — two queries differing only in `algorithm` must never alias to
/// one cached verdict.
struct VerdictKey {
  std::uint64_t system;    // structural fingerprint
  const void* formula;     // interned node (null for automaton flavor)
  std::uint64_t property;  // remapped property fingerprint (0 for formula)
  CheckKind kind;
  InclusionAlgorithm algorithm;

  friend bool operator==(const VerdictKey&, const VerdictKey&) = default;
};

struct VerdictKeyHash {
  std::size_t operator()(const VerdictKey& k) const {
    std::size_t h = std::hash<std::uint64_t>{}(k.system);
    h = hash_combine(h, std::hash<const void*>{}(k.formula));
    h = hash_combine(h, std::hash<std::uint64_t>{}(k.property));
    h = hash_combine(h, static_cast<std::size_t>(k.kind));
    return hash_combine(h, static_cast<std::size_t>(k.algorithm));
  }
};

}  // namespace

struct Engine::Impl {
  explicit Impl(const EngineOptions& opts)
      : options(opts),
        systems(opts.cache_capacity),
        behaviors(opts.cache_capacity),
        prefixes(opts.cache_capacity),
        translations(opts.cache_capacity),
        properties(opts.cache_capacity),
        verdicts(opts.cache_capacity * 8),
        pool(opts.jobs <= 1 ? 0 : opts.jobs) {}

  EngineOptions options;
  MemoCache<std::uint64_t, ParsedSystem> systems;
  MemoCache<std::uint64_t, Buchi> behaviors;
  MemoCache<std::uint64_t, Nfa> prefixes;
  MemoCache<TranslationKey, Buchi, TranslationKeyHash> translations;
  MemoCache<PropertyKey, ParsedProperty, PropertyKeyHash> properties;
  MemoCache<VerdictKey, Verdict, VerdictKeyHash> verdicts;
  ThreadPool pool;
  std::atomic<std::uint64_t> queries_run{0};
  std::atomic<std::uint64_t> certificates_checked{0};
  std::atomic<std::uint64_t> certificates_failed{0};
  mutable std::mutex profile_mutex;
  QueryProfile profile_totals;

  std::shared_ptr<const Buchi> translation(Formula f, const Labeling& lambda,
                                           bool negated, Budget* budget) {
    const TranslationKey key{f.raw(), lambda.alphabet().get(), negated};
    return translations.get_or_compute(key, [&] {
      return negated ? translate_ltl_negated(f, lambda, budget)
                     : translate_ltl(f, lambda, budget);
    });
  }

  std::shared_ptr<const ParsedProperty> property(const Query& query,
                                                 const AlphabetRef& sigma,
                                                 Budget* budget) {
    const PropertyKey key{fingerprint_text(query.property_automaton),
                          sigma.get()};
    return properties.get_or_compute(key, [&] {
      StageScope scope(budget, Stage::kParse);
      Buchi raw = parse_buchi(query.property_automaton);
      Buchi remapped =
          Buchi::from_structure(remap_alphabet(raw.structure(), sigma));
      const std::uint64_t fp = fingerprint_buchi(remapped);
      return ParsedProperty{std::move(remapped), fp};
    });
  }

  std::shared_ptr<const Buchi> negated_property(
      const std::shared_ptr<const ParsedProperty>& prop, Budget* budget) {
    // Not memoized on its own: the verdict cache already absorbs repeats,
    // so a complement is only rebuilt when the whole verdict is uncached.
    return std::make_shared<const Buchi>(
        complement_buchi(prop->automaton, budget));
  }

  /// The decision procedures of rlv/core/relative.hpp and
  /// rlv/fair/fair_check.hpp, restated over the cached intermediates. Every
  /// derived object is built from the *cached* behaviors automaton so that
  /// alphabet identity (which intersect_buchi and check_inclusion require)
  /// is preserved even when two different texts parse to one structure.
  Verdict decide(const std::shared_ptr<const ParsedSystem>& sys,
                 const std::optional<Formula>& f,
                 const std::shared_ptr<const ParsedProperty>& prop,
                 const Query& query, Budget* budget) {
    const auto behaviors_aut =
        behaviors.get_or_compute(sys->fingerprint, [&] {
          StageScope scope(budget, Stage::kPreTrim);
          return limit_of_prefix_closed(sys->nfa);
        });
    const Labeling lambda = Labeling::canonical(behaviors_aut->alphabet());

    // The positive property automaton, whichever flavor the query used.
    auto positive = [&]() -> std::shared_ptr<const Buchi> {
      if (prop) {
        return std::shared_ptr<const Buchi>(prop, &prop->automaton);
      }
      return translation(*f, lambda, /*negated=*/false, budget);
    };
    // ¬P: pushed-in negation for formulas, rank-based complementation for
    // automata (the exponential path the Budget exists for).
    auto negated = [&]() -> std::shared_ptr<const Buchi> {
      if (prop) return negated_property(prop, budget);
      return translation(*f, lambda, /*negated=*/true, budget);
    };

    // Per-query override of the engine-wide intra-query thread count.
    const std::size_t threads =
        query.threads > 0 ? query.threads
                          : std::max<std::size_t>(1, options.intra_query_threads);

    Verdict verdict;
    switch (query.kind) {
      case CheckKind::kRelativeLiveness: {
        // Lemma 4.3: pre(L_ω) ⊆ pre(L_ω ∩ P); ⊇ always holds.
        const auto property_aut = positive();
        const Buchi intersection =
            intersect_buchi(*behaviors_aut, *property_aut, budget);
        Nfa pre_both = [&] {
          StageScope scope(budget, Stage::kPreTrim);
          return prefix_nfa(intersection);
        }();
        const auto pre_system =
            prefixes.get_or_compute(sys->fingerprint, [&] {
              StageScope scope(budget, Stage::kPreTrim);
              return prefix_nfa(*behaviors_aut);
            });
        const InclusionResult inc = check_inclusion(
            *pre_system, pre_both, query.algorithm, budget, threads);
        verdict.holds = inc.included;
        verdict.violating_prefix = inc.counterexample;
        break;
      }
      case CheckKind::kRelativeSafety: {
        // Lemma 4.4: L_ω ∩ lim(pre(L_ω ∩ P)) ∩ ¬P = ∅, explored on the fly —
        // the triple product is never materialized, so the query pays only
        // for the states the nested DFS visits.
        const auto property_aut = positive();
        const auto negated_aut = negated();
        const Buchi intersection =
            intersect_buchi(*behaviors_aut, *property_aut, budget);
        const Buchi closure = [&] {
          StageScope scope(budget, Stage::kPreTrim);
          return limit_of_prefix_closed(prefix_nfa(intersection));
        }();
        auto lasso = find_accepting_lasso_product(
            {behaviors_aut.get(), &closure, negated_aut.get()}, budget);
        verdict.holds = !lasso.has_value();
        verdict.counterexample = std::move(lasso);
        break;
      }
      case CheckKind::kSatisfaction: {
        const auto negated_aut = negated();
        auto lasso = find_accepting_lasso_product(
            {behaviors_aut.get(), negated_aut.get()}, budget);
        verdict.holds = !lasso.has_value();
        verdict.counterexample = std::move(lasso);
        break;
      }
      case CheckKind::kFairStrong:
      case CheckKind::kFairWeak: {
        const auto negated_aut = negated();
        const FairCheckResult res = check_fair_satisfaction_negated(
            *behaviors_aut, *negated_aut,
            query.kind == CheckKind::kFairStrong
                ? FairnessKind::kStrongTransition
                : FairnessKind::kWeakTransition);
        verdict.holds = res.all_fair_runs_satisfy;
        verdict.counterexample = res.counterexample;
        break;
      }
    }

    // With certification on (engine-wide or requested by this query):
    // re-check the negative verdict's witness with the independent
    // certificate checker before the verdict can enter the cache. A
    // rejected witness throws — run_one reports it through Verdict::error
    // and get_or_compute drops the cache entry, so a bad witness is never
    // served to anyone.
    if ((options.certify_verdicts || query.certify) && !verdict.holds) {
      StageScope scope(budget, Stage::kOther);
      certificates_checked.fetch_add(1, std::memory_order_relaxed);
      cert::Validation validation;
      switch (query.kind) {
        case CheckKind::kRelativeLiveness:
          if (!verdict.violating_prefix) {
            validation = {false, true, "missing violating prefix"};
          } else {
            validation = cert::check_doomed_prefix(*verdict.violating_prefix,
                                                   *behaviors_aut, *positive());
          }
          break;
        case CheckKind::kRelativeSafety:
          if (!verdict.counterexample) {
            validation = {false, true, "missing counterexample lasso"};
          } else if (prop) {
            validation = cert::check_safety_lasso(
                *verdict.counterexample, *behaviors_aut, prop->automaton);
          } else {
            validation = cert::check_safety_lasso(
                *verdict.counterexample, *behaviors_aut, *positive(), *f,
                lambda);
          }
          break;
        case CheckKind::kSatisfaction:
        case CheckKind::kFairStrong:
        case CheckKind::kFairWeak:
          // Fairness counterexamples get the partial check (membership and
          // property violation); the fairness of the run is not re-derived.
          if (!verdict.counterexample) {
            validation = {false, true, "missing counterexample lasso"};
          } else if (prop) {
            validation = cert::check_violation_lasso(
                *verdict.counterexample, *behaviors_aut, prop->automaton);
          } else {
            validation = cert::check_violation_lasso(*verdict.counterexample,
                                                     *behaviors_aut, *f,
                                                     lambda);
          }
          break;
      }
      if (!validation.valid) {
        certificates_failed.fetch_add(1, std::memory_order_relaxed);
        throw std::runtime_error("certificate validation failed: " +
                                 validation.reason);
      }
    }
    return verdict;
  }

  Verdict run_one(const Query& query) {
    const auto start = std::chrono::steady_clock::now();
    queries_run.fetch_add(1, std::memory_order_relaxed);

    // One budget per query, armed from the engine options unless the query
    // carries its own override (the serving path: client limits clamped to
    // the server's caps). Unarmed budgets never trip and only collect the
    // per-stage profile, so budget-disabled verdicts are identical to
    // pre-budget execution.
    Budget budget;
    const std::uint64_t timeout_ms =
        query.timeout_ms > 0 ? query.timeout_ms : options.timeout_ms;
    if (timeout_ms > 0) {
      budget.set_deadline_in(std::chrono::milliseconds(timeout_ms));
    }
    const std::uint64_t max_states =
        query.max_states > 0 ? query.max_states : options.max_states;
    if (max_states > 0) budget.set_max_states(max_states);

    Verdict verdict;
    try {
      std::shared_ptr<const ParsedSystem> sys;
      std::optional<Formula> f;
      {
        StageScope scope(&budget, Stage::kParse);
        sys = systems.get_or_compute(fingerprint_text(query.system), [&] {
          Nfa nfa = parse_system(query.system);
          const std::uint64_t fp = fingerprint_nfa(nfa);
          return ParsedSystem{std::move(nfa), fp};
        });
        if (query.property_automaton.empty()) f = parse_ltl(query.formula);
      }
      std::shared_ptr<const ParsedProperty> prop;
      if (!query.property_automaton.empty()) {
        prop = property(query, sys->nfa.alphabet(), &budget);
      }
      const VerdictKey key{sys->fingerprint, f ? f->raw() : nullptr,
                           prop ? prop->fingerprint : 0, query.kind,
                           query.algorithm};
      // A ResourceExhausted escaping decide() propagates out of
      // get_or_compute, which drops the entry — exhausted outcomes are
      // never cached, so a retry with a larger budget recomputes.
      verdict = *verdicts.get_or_compute(
          key, [&] { return decide(sys, f, prop, query, &budget); });
    } catch (const ResourceExhausted& e) {
      verdict = Verdict{};
      verdict.resource_exhausted = true;
      verdict.exhausted_stage = std::string(stage_name(e.stage()));
    } catch (const std::exception& e) {
      verdict = Verdict{};
      verdict.error = e.what();
    }
    verdict.profile = budget.profile();
    {
      std::lock_guard lock(profile_mutex);
      profile_totals += verdict.profile;
    }
    verdict.millis =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    return verdict;
  }
};

Engine::Engine(EngineOptions options)
    : impl_(std::make_unique<Impl>(options)) {}

Engine::~Engine() = default;

std::vector<Verdict> Engine::run(const std::vector<Query>& queries) {
  std::vector<Verdict> results(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    impl_->pool.submit(
        [this, &queries, &results, i] { results[i] = impl_->run_one(queries[i]); });
  }
  impl_->pool.wait_idle();
  return results;
}

Verdict Engine::run_one(const Query& query) { return impl_->run_one(query); }

std::size_t Engine::workers() const { return impl_->pool.num_workers(); }

void Engine::submit(Query query, std::function<void(Verdict)> done) {
  impl_->pool.submit(
      [impl = impl_.get(), query = std::move(query),
       done = std::move(done)] { done(impl->run_one(query)); });
}

EngineStats Engine::stats() const {
  EngineStats stats;
  stats.systems = impl_->systems.counters();
  stats.behaviors = impl_->behaviors.counters();
  stats.prefixes = impl_->prefixes.counters();
  stats.translations = impl_->translations.counters();
  stats.properties = impl_->properties.counters();
  stats.verdicts = impl_->verdicts.counters();
  stats.queries_run = impl_->queries_run.load(std::memory_order_relaxed);
  stats.certificates_checked =
      impl_->certificates_checked.load(std::memory_order_relaxed);
  stats.certificates_failed =
      impl_->certificates_failed.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(impl_->profile_mutex);
    stats.stages = impl_->profile_totals;
  }
  return stats;
}

}  // namespace rlv

#include "rlv/engine/engine.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>

#include "rlv/cert/certificate.hpp"
#include "rlv/engine/fingerprint.hpp"
#include "rlv/engine/thread_pool.hpp"
#include "rlv/fair/fair_check.hpp"
#include "rlv/io/format.hpp"
#include "rlv/lang/inclusion.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/monitor/session.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/complement.hpp"
#include "rlv/omega/emptiness.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/omega/live.hpp"
#include "rlv/omega/product.hpp"
#include "rlv/util/hash.hpp"

namespace rlv {

std::optional<CheckKind> parse_check_kind(std::string_view name) {
  if (name == "rl") return CheckKind::kRelativeLiveness;
  if (name == "rs") return CheckKind::kRelativeSafety;
  if (name == "sat") return CheckKind::kSatisfaction;
  if (name == "fair") return CheckKind::kFairStrong;
  if (name == "fairweak") return CheckKind::kFairWeak;
  return std::nullopt;
}

std::string_view check_kind_name(CheckKind kind) {
  switch (kind) {
    case CheckKind::kRelativeLiveness:
      return "rl";
    case CheckKind::kRelativeSafety:
      return "rs";
    case CheckKind::kSatisfaction:
      return "sat";
    case CheckKind::kFairStrong:
      return "fair";
    case CheckKind::kFairWeak:
      return "fairweak";
  }
  return "?";
}

std::optional<InclusionAlgorithm> parse_inclusion_algorithm(
    std::string_view name) {
  if (name == "subset") return InclusionAlgorithm::kSubset;
  if (name == "antichain") return InclusionAlgorithm::kAntichain;
  return std::nullopt;
}

std::string_view inclusion_algorithm_name(InclusionAlgorithm algorithm) {
  switch (algorithm) {
    case InclusionAlgorithm::kSubset:
      return "subset";
    case InclusionAlgorithm::kAntichain:
      return "antichain";
  }
  return "?";
}

namespace {

struct ParsedSystem {
  Nfa nfa;
  std::uint64_t fingerprint;  // structural, not text: see fingerprint.hpp
};

/// A property automaton parsed and remapped onto one system alphabet.
struct ParsedProperty {
  Buchi automaton;
  std::uint64_t fingerprint;  // structural, of the remapped automaton
};

struct TranslationKey {
  const void* formula;    // interned node — canonical per process
  const void* alphabet;   // alphabet identity ties symbols to the system
  bool negated;

  friend bool operator==(const TranslationKey&, const TranslationKey&) =
      default;
};

struct TranslationKeyHash {
  std::size_t operator()(const TranslationKey& k) const {
    std::size_t h = std::hash<const void*>{}(k.formula);
    h = hash_combine(h, std::hash<const void*>{}(k.alphabet));
    return hash_combine(h, k.negated ? 1 : 0);
  }
};

struct PropertyKey {
  std::uint64_t text;     // fingerprint of the raw automaton text
  const void* alphabet;   // target alphabet identity

  friend bool operator==(const PropertyKey&, const PropertyKey&) = default;
};

struct PropertyKeyHash {
  std::size_t operator()(const PropertyKey& k) const {
    return hash_combine(std::hash<std::uint64_t>{}(k.text),
                        std::hash<const void*>{}(k.alphabet));
  }
};

/// Monitor automata are keyed like verdicts, minus kind/algorithm (there
/// is only one compilation) plus the certify flag: a certified compile
/// validated every doomed witness and must not alias an unvalidated one.
struct MonitorKey {
  std::uint64_t system;    // structural fingerprint
  const void* formula;     // interned node (null for automaton flavor)
  std::uint64_t property;  // remapped property fingerprint (0 for formula)
  bool certify;

  friend bool operator==(const MonitorKey&, const MonitorKey&) = default;
};

struct MonitorKeyHash {
  std::size_t operator()(const MonitorKey& k) const {
    std::size_t h = std::hash<std::uint64_t>{}(k.system);
    h = hash_combine(h, std::hash<const void*>{}(k.formula));
    h = hash_combine(h, std::hash<std::uint64_t>{}(k.property));
    return hash_combine(h, k.certify ? 1 : 0);
  }
};

/// The verdict key carries everything that determines a check's outcome
/// *and presentation*: the inclusion algorithm is part of the key because
/// subset and antichain report different (both correct) counterexample
/// words — two queries differing only in `algorithm` must never alias to
/// one cached verdict.
struct VerdictKey {
  std::uint64_t system;    // structural fingerprint
  const void* formula;     // interned node (null for automaton flavor)
  std::uint64_t property;  // remapped property fingerprint (0 for formula)
  CheckKind kind;
  InclusionAlgorithm algorithm;

  friend bool operator==(const VerdictKey&, const VerdictKey&) = default;
};

struct VerdictKeyHash {
  std::size_t operator()(const VerdictKey& k) const {
    std::size_t h = std::hash<std::uint64_t>{}(k.system);
    h = hash_combine(h, std::hash<const void*>{}(k.formula));
    h = hash_combine(h, std::hash<std::uint64_t>{}(k.property));
    h = hash_combine(h, static_cast<std::size_t>(k.kind));
    return hash_combine(h, static_cast<std::size_t>(k.algorithm));
  }
};

/// cache_shards = 0 resolves to the job count: a single-job engine keeps
/// one shard (exact whole-cache LRU, as the eviction unit tests require),
/// while an N-worker server gets ~N shard mutexes per cache. MemoCache
/// rounds up to a power of two itself.
std::size_t resolve_cache_shards(const EngineOptions& opts) {
  const std::size_t want = opts.cache_shards > 0 ? opts.cache_shards
                           : opts.jobs > 0       ? opts.jobs
                                                 : 1;
  return want;
}

/// Cumulative per-stage totals as relaxed atomics: workers merge each
/// query's profile with plain fetch_adds (CAS-max for the peaks), and a
/// `stats` snapshot reads them without taking any lock — so observability
/// polling never stalls a worker mid-query the way the old profile mutex
/// could.
struct AtomicStageTotals {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> states_built{0};
  std::atomic<std::uint64_t> peak_antichain{0};
  std::atomic<std::uint64_t> peak_memory_bytes{0};
  std::atomic<std::uint64_t> nanos{0};

  static void note_peak(std::atomic<std::uint64_t>& peak,
                        std::uint64_t value) {
    std::uint64_t seen = peak.load(std::memory_order_relaxed);
    while (value > seen &&
           !peak.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  void merge(const StageMetrics& m) {
    calls.fetch_add(m.calls, std::memory_order_relaxed);
    states_built.fetch_add(m.states_built.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    note_peak(peak_antichain,
              m.peak_antichain.load(std::memory_order_relaxed));
    note_peak(peak_memory_bytes,
              m.peak_memory_bytes.load(std::memory_order_relaxed));
    nanos.fetch_add(m.nanos, std::memory_order_relaxed);
  }

  void snapshot_into(StageMetrics& out) const {
    out.calls = calls.load(std::memory_order_relaxed);
    out.states_built.store(states_built.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    out.peak_antichain.store(peak_antichain.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
    out.peak_memory_bytes.store(
        peak_memory_bytes.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    out.nanos = nanos.load(std::memory_order_relaxed);
  }
};

}  // namespace

struct Engine::Impl {
  explicit Impl(const EngineOptions& opts)
      : options(opts),
        systems(opts.cache_capacity, resolve_cache_shards(opts)),
        behaviors(opts.cache_capacity, resolve_cache_shards(opts)),
        prefixes(opts.cache_capacity, resolve_cache_shards(opts)),
        translations(opts.cache_capacity, resolve_cache_shards(opts)),
        properties(opts.cache_capacity, resolve_cache_shards(opts)),
        verdicts(opts.cache_capacity * 8, resolve_cache_shards(opts)),
        monitors(opts.cache_capacity, resolve_cache_shards(opts)),
        sessions(opts.max_sessions),
        pool(opts.jobs <= 1 ? 0 : opts.jobs) {}

  EngineOptions options;
  MemoCache<std::uint64_t, ParsedSystem> systems;
  MemoCache<std::uint64_t, Buchi> behaviors;
  MemoCache<std::uint64_t, Nfa> prefixes;
  MemoCache<TranslationKey, Buchi, TranslationKeyHash> translations;
  MemoCache<PropertyKey, ParsedProperty, PropertyKeyHash> properties;
  MemoCache<VerdictKey, Verdict, VerdictKeyHash> verdicts;
  MemoCache<MonitorKey, monitor::MonitorAutomaton, MonitorKeyHash> monitors;
  /// The streaming-session state. One mutex guards the table: the hot path
  /// holds it for a few table lookups per event, negligible next to the
  /// socket round-trip that precedes every touch.
  mutable std::mutex session_mutex;
  monitor::SessionTable sessions;
  const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  std::atomic<std::uint64_t> monitor_steps{0};
  std::atomic<std::uint64_t> monitor_dooms{0};
  ThreadPool pool;
  std::atomic<std::uint64_t> queries_run{0};
  std::atomic<std::uint64_t> certificates_checked{0};
  std::atomic<std::uint64_t> certificates_failed{0};
  std::array<AtomicStageTotals, kNumStages> stage_totals;

  void merge_profile(const QueryProfile& profile) {
    for (std::size_t i = 0; i < kNumStages; ++i) {
      stage_totals[i].merge(profile.stages[i]);
    }
  }

  std::shared_ptr<const Buchi> translation(Formula f, const Labeling& lambda,
                                           bool negated, Budget* budget) {
    const TranslationKey key{f.raw(), lambda.alphabet().get(), negated};
    return translations.get_or_compute(key, [&] {
      return negated ? translate_ltl_negated(f, lambda, budget)
                     : translate_ltl(f, lambda, budget);
    });
  }

  std::shared_ptr<const ParsedProperty> property(const std::string& text,
                                                 const AlphabetRef& sigma,
                                                 Budget* budget) {
    const PropertyKey key{fingerprint_text(text), sigma.get()};
    return properties.get_or_compute(key, [&] {
      StageScope scope(budget, Stage::kParse);
      Buchi raw = parse_buchi(text);
      Buchi remapped =
          Buchi::from_structure(remap_alphabet(raw.structure(), sigma));
      const std::uint64_t fp = fingerprint_buchi(remapped);
      return ParsedProperty{std::move(remapped), fp};
    });
  }

  std::shared_ptr<const Buchi> negated_property(
      const std::shared_ptr<const ParsedProperty>& prop, Budget* budget) {
    // Not memoized on its own: the verdict cache already absorbs repeats,
    // so a complement is only rebuilt when the whole verdict is uncached.
    return std::make_shared<const Buchi>(
        complement_buchi(prop->automaton, budget));
  }

  /// The decision procedures of rlv/core/relative.hpp and
  /// rlv/fair/fair_check.hpp, restated over the cached intermediates. Every
  /// derived object is built from the *cached* behaviors automaton so that
  /// alphabet identity (which intersect_buchi and check_inclusion require)
  /// is preserved even when two different texts parse to one structure.
  Verdict decide(const std::shared_ptr<const ParsedSystem>& sys,
                 const std::optional<Formula>& f,
                 const std::shared_ptr<const ParsedProperty>& prop,
                 const Query& query, Budget* budget) {
    const auto behaviors_aut =
        behaviors.get_or_compute(sys->fingerprint, [&] {
          StageScope scope(budget, Stage::kPreTrim);
          return limit_of_prefix_closed(sys->nfa);
        });
    const Labeling lambda = Labeling::canonical(behaviors_aut->alphabet());

    // The positive property automaton, whichever flavor the query used.
    auto positive = [&]() -> std::shared_ptr<const Buchi> {
      if (prop) {
        return std::shared_ptr<const Buchi>(prop, &prop->automaton);
      }
      return translation(*f, lambda, /*negated=*/false, budget);
    };
    // ¬P: pushed-in negation for formulas, rank-based complementation for
    // automata (the exponential path the Budget exists for).
    auto negated = [&]() -> std::shared_ptr<const Buchi> {
      if (prop) return negated_property(prop, budget);
      return translation(*f, lambda, /*negated=*/true, budget);
    };

    // Per-query override of the engine-wide intra-query thread count.
    const std::size_t threads =
        query.threads > 0 ? query.threads
                          : std::max<std::size_t>(1, options.intra_query_threads);

    Verdict verdict;
    switch (query.kind) {
      case CheckKind::kRelativeLiveness: {
        // Lemma 4.3: pre(L_ω) ⊆ pre(L_ω ∩ P); ⊇ always holds.
        const auto property_aut = positive();
        const Buchi intersection =
            intersect_buchi(*behaviors_aut, *property_aut, budget);
        Nfa pre_both = [&] {
          StageScope scope(budget, Stage::kPreTrim);
          return prefix_nfa(intersection);
        }();
        const auto pre_system =
            prefixes.get_or_compute(sys->fingerprint, [&] {
              StageScope scope(budget, Stage::kPreTrim);
              return prefix_nfa(*behaviors_aut);
            });
        const InclusionResult inc = check_inclusion(
            *pre_system, pre_both, query.algorithm, budget, threads);
        verdict.holds = inc.included;
        verdict.violating_prefix = inc.counterexample;
        break;
      }
      case CheckKind::kRelativeSafety: {
        // Lemma 4.4: L_ω ∩ lim(pre(L_ω ∩ P)) ∩ ¬P = ∅, explored on the fly —
        // the triple product is never materialized, so the query pays only
        // for the states the nested DFS visits.
        const auto property_aut = positive();
        const auto negated_aut = negated();
        const Buchi intersection =
            intersect_buchi(*behaviors_aut, *property_aut, budget);
        const Buchi closure = [&] {
          StageScope scope(budget, Stage::kPreTrim);
          return limit_of_prefix_closed(prefix_nfa(intersection));
        }();
        auto lasso = find_accepting_lasso_product(
            {behaviors_aut.get(), &closure, negated_aut.get()}, budget);
        verdict.holds = !lasso.has_value();
        verdict.counterexample = std::move(lasso);
        break;
      }
      case CheckKind::kSatisfaction: {
        const auto negated_aut = negated();
        auto lasso = find_accepting_lasso_product(
            {behaviors_aut.get(), negated_aut.get()}, budget);
        verdict.holds = !lasso.has_value();
        verdict.counterexample = std::move(lasso);
        break;
      }
      case CheckKind::kFairStrong:
      case CheckKind::kFairWeak: {
        const auto negated_aut = negated();
        const FairCheckResult res = check_fair_satisfaction_negated(
            *behaviors_aut, *negated_aut,
            query.kind == CheckKind::kFairStrong
                ? FairnessKind::kStrongTransition
                : FairnessKind::kWeakTransition);
        verdict.holds = res.all_fair_runs_satisfy;
        verdict.counterexample = res.counterexample;
        break;
      }
    }

    // With certification on (engine-wide or requested by this query):
    // re-check the negative verdict's witness with the independent
    // certificate checker before the verdict can enter the cache. A
    // rejected witness throws — run_one reports it through Verdict::error
    // and get_or_compute drops the cache entry, so a bad witness is never
    // served to anyone.
    if ((options.certify_verdicts || query.certify) && !verdict.holds) {
      StageScope scope(budget, Stage::kOther);
      certificates_checked.fetch_add(1, std::memory_order_relaxed);
      cert::Validation validation;
      switch (query.kind) {
        case CheckKind::kRelativeLiveness:
          if (!verdict.violating_prefix) {
            validation = {false, true, "missing violating prefix"};
          } else {
            validation = cert::check_doomed_prefix(*verdict.violating_prefix,
                                                   *behaviors_aut, *positive());
          }
          break;
        case CheckKind::kRelativeSafety:
          if (!verdict.counterexample) {
            validation = {false, true, "missing counterexample lasso"};
          } else if (prop) {
            validation = cert::check_safety_lasso(
                *verdict.counterexample, *behaviors_aut, prop->automaton);
          } else {
            validation = cert::check_safety_lasso(
                *verdict.counterexample, *behaviors_aut, *positive(), *f,
                lambda);
          }
          break;
        case CheckKind::kSatisfaction:
        case CheckKind::kFairStrong:
        case CheckKind::kFairWeak:
          // Fairness counterexamples get the partial check (membership and
          // property violation); the fairness of the run is not re-derived.
          if (!verdict.counterexample) {
            validation = {false, true, "missing counterexample lasso"};
          } else if (prop) {
            validation = cert::check_violation_lasso(
                *verdict.counterexample, *behaviors_aut, prop->automaton);
          } else {
            validation = cert::check_violation_lasso(*verdict.counterexample,
                                                     *behaviors_aut, *f,
                                                     lambda);
          }
          break;
      }
      if (!validation.valid) {
        certificates_failed.fetch_add(1, std::memory_order_relaxed);
        throw std::runtime_error("certificate validation failed: " +
                                 validation.reason);
      }
    }
    return verdict;
  }

  Verdict run_one(const Query& query) {
    const auto start = std::chrono::steady_clock::now();
    queries_run.fetch_add(1, std::memory_order_relaxed);

    // One budget per query, armed from the engine options unless the query
    // carries its own override (the serving path: client limits clamped to
    // the server's caps). Unarmed budgets never trip and only collect the
    // per-stage profile, so budget-disabled verdicts are identical to
    // pre-budget execution.
    Budget budget;
    const std::uint64_t timeout_ms =
        query.timeout_ms > 0 ? query.timeout_ms : options.timeout_ms;
    if (timeout_ms > 0) {
      budget.set_deadline_in(std::chrono::milliseconds(timeout_ms));
    }
    const std::uint64_t max_states =
        query.max_states > 0 ? query.max_states : options.max_states;
    if (max_states > 0) budget.set_max_states(max_states);

    Verdict verdict;
    try {
      std::shared_ptr<const ParsedSystem> sys;
      std::optional<Formula> f;
      {
        StageScope scope(&budget, Stage::kParse);
        sys = systems.get_or_compute(fingerprint_text(query.system), [&] {
          Nfa nfa = parse_system(query.system);
          const std::uint64_t fp = fingerprint_nfa(nfa);
          return ParsedSystem{std::move(nfa), fp};
        });
        if (query.property_automaton.empty()) f = parse_ltl(query.formula);
      }
      std::shared_ptr<const ParsedProperty> prop;
      if (!query.property_automaton.empty()) {
        prop = property(query.property_automaton, sys->nfa.alphabet(), &budget);
      }
      const VerdictKey key{sys->fingerprint, f ? f->raw() : nullptr,
                           prop ? prop->fingerprint : 0, query.kind,
                           query.algorithm};
      // A ResourceExhausted escaping decide() propagates out of
      // get_or_compute, which drops the entry — exhausted outcomes are
      // never cached, so a retry with a larger budget recomputes.
      verdict = *verdicts.get_or_compute(
          key, [&] { return decide(sys, f, prop, query, &budget); });
    } catch (const ResourceExhausted& e) {
      verdict = Verdict{};
      verdict.resource_exhausted = true;
      verdict.exhausted_stage = std::string(stage_name(e.stage()));
    } catch (const std::exception& e) {
      verdict = Verdict{};
      verdict.error = e.what();
    }
    verdict.profile = budget.profile();
    merge_profile(verdict.profile);
    verdict.millis =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    return verdict;
  }

  [[nodiscard]] std::uint64_t now_ms() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
  }

  MonitorOpenResult open_monitor(const MonitorSpec& spec) {
    const auto start = std::chrono::steady_clock::now();
    MonitorOpenResult result;

    Budget budget;
    if (options.timeout_ms > 0) {
      budget.set_deadline_in(std::chrono::milliseconds(options.timeout_ms));
    }
    if (options.max_states > 0) budget.set_max_states(options.max_states);

    try {
      if (!spec.formula.empty() && !spec.property_automaton.empty()) {
        throw std::runtime_error(
            "'formula' and 'property_automaton' are mutually exclusive");
      }
      if (spec.formula.empty() && spec.property_automaton.empty()) {
        throw std::runtime_error("missing 'formula' or 'property_automaton'");
      }
      std::shared_ptr<const ParsedSystem> sys;
      std::optional<Formula> f;
      {
        StageScope scope(&budget, Stage::kParse);
        sys = systems.get_or_compute(fingerprint_text(spec.system), [&] {
          Nfa nfa = parse_system(spec.system);
          const std::uint64_t fp = fingerprint_nfa(nfa);
          return ParsedSystem{std::move(nfa), fp};
        });
        if (spec.property_automaton.empty()) f = parse_ltl(spec.formula);
      }
      std::shared_ptr<const ParsedProperty> prop;
      if (!spec.property_automaton.empty()) {
        prop = property(spec.property_automaton, sys->nfa.alphabet(), &budget);
      }
      const MonitorKey key{sys->fingerprint, f ? f->raw() : nullptr,
                           prop ? prop->fingerprint : 0, spec.certify};
      // Compile once per distinct spec; an exception (including a tripped
      // budget or a refuted witness) drops the cache entry, so a retry
      // recompiles instead of serving a half-built automaton.
      const auto automaton = monitors.get_or_compute(key, [&] {
        const auto behaviors_aut =
            behaviors.get_or_compute(sys->fingerprint, [&] {
              StageScope scope(&budget, Stage::kPreTrim);
              return limit_of_prefix_closed(sys->nfa);
            });
        const Labeling lambda = Labeling::canonical(behaviors_aut->alphabet());
        const std::shared_ptr<const Buchi> positive =
            prop ? std::shared_ptr<const Buchi>(prop, &prop->automaton)
                 : translation(*f, lambda, /*negated=*/false, &budget);
        return monitor::MonitorAutomaton(*behaviors_aut, *positive,
                                         spec.certify, &budget);
      });
      std::lock_guard lock(session_mutex);
      const std::uint64_t id = sessions.open(automaton, now_ms());
      if (id == 0) {
        result.table_full = true;
      } else {
        result.session = id;
        result.verdict = automaton->verdict(automaton->initial());
        result.certified = automaton->certified();
      }
    } catch (const ResourceExhausted& e) {
      result.resource_exhausted = true;
      result.exhausted_stage = std::string(stage_name(e.stage()));
    } catch (const std::exception& e) {
      result.error = e.what();
    }
    result.millis = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    return result;
  }

  MonitorStepResult step_monitor(std::uint64_t session,
                                 const std::vector<std::string>& actions) {
    MonitorStepResult result;
    std::lock_guard lock(session_mutex);
    monitor::Session* s = sessions.find(session, now_ms());
    if (!s) {
      result.error = "unknown_session";
      return result;
    }
    const monitor::MonitorAutomaton& automaton = *s->automaton;
    const Alphabet& sigma = *automaton.alphabet();

    // Validate the whole batch before applying any of it: a bad action or
    // a tripped event cap must not half-step the stream.
    Word symbols;
    symbols.reserve(actions.size());
    for (const std::string& name : actions) {
      if (!sigma.contains(name)) {
        result.error = "unknown_action";
        result.error_detail = "'" + name + "' is not in the alphabet";
        return result;
      }
      symbols.push_back(sigma.id(name));
    }
    if (options.max_session_events > 0 &&
        s->events + symbols.size() > options.max_session_events) {
      result.error = "event_cap";
      result.error_detail =
          "session event cap is " + std::to_string(options.max_session_events);
      return result;
    }

    std::uint32_t state = s->state;
    monitor::Verdict verdict = automaton.verdict(state);
    for (std::size_t i = 0; i < symbols.size(); ++i) {
      state = automaton.step(state, symbols[i]);
      const monitor::Verdict after = automaton.verdict(state);
      if (verdict == monitor::Verdict::kSatisfiable &&
          after != monitor::Verdict::kSatisfiable) {
        result.transition_index = i;
        if (after == monitor::Verdict::kDoomed) {
          result.transition_doomed = true;
          const Word w = automaton.witness(state);
          result.witness.reserve(w.size());
          for (const Symbol a : w) result.witness.push_back(sigma.name(a));
          result.witness_certified = automaton.certified();
          monitor_dooms.fetch_add(1, std::memory_order_relaxed);
        }
      }
      verdict = after;
    }
    s->state = state;
    s->events += symbols.size();
    monitor_steps.fetch_add(symbols.size(), std::memory_order_relaxed);
    result.verdict = verdict;
    result.events = s->events;
    return result;
  }

  MonitorCloseResult close_monitor(std::uint64_t session) {
    MonitorCloseResult result;
    std::lock_guard lock(session_mutex);
    monitor::Session* s = sessions.find(session, now_ms());
    if (!s) {
      result.error = "unknown_session";
      return result;
    }
    result.events = s->events;
    result.closed = sessions.close(session);
    return result;
  }
};

Engine::Engine(EngineOptions options)
    : impl_(std::make_unique<Impl>(options)) {}

Engine::~Engine() = default;

std::vector<Verdict> Engine::run(const std::vector<Query>& queries) {
  std::vector<Verdict> results(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    impl_->pool.submit(
        [this, &queries, &results, i] { results[i] = impl_->run_one(queries[i]); });
  }
  impl_->pool.wait_idle();
  return results;
}

Verdict Engine::run_one(const Query& query) { return impl_->run_one(query); }

std::size_t Engine::workers() const { return impl_->pool.num_workers(); }

void Engine::submit(Query query, std::function<void(Verdict)> done) {
  impl_->pool.submit(
      [impl = impl_.get(), query = std::move(query),
       done = std::move(done)] { done(impl->run_one(query)); });
}

MonitorOpenResult Engine::open_monitor(const MonitorSpec& spec) {
  return impl_->open_monitor(spec);
}

void Engine::submit_monitor_open(MonitorSpec spec,
                                 std::function<void(MonitorOpenResult)> done) {
  impl_->pool.submit(
      [impl = impl_.get(), spec = std::move(spec),
       done = std::move(done)] { done(impl->open_monitor(spec)); });
}

MonitorStepResult Engine::step_monitor(std::uint64_t session,
                                       const std::vector<std::string>& actions) {
  return impl_->step_monitor(session, actions);
}

MonitorCloseResult Engine::close_monitor(std::uint64_t session) {
  return impl_->close_monitor(session);
}

std::size_t Engine::sweep_idle_sessions(std::uint64_t max_idle_ms) {
  std::lock_guard lock(impl_->session_mutex);
  return impl_->sessions.sweep_idle(impl_->now_ms(), max_idle_ms);
}

EngineStats Engine::stats() const {
  EngineStats stats;
  stats.systems = impl_->systems.counters();
  stats.behaviors = impl_->behaviors.counters();
  stats.prefixes = impl_->prefixes.counters();
  stats.translations = impl_->translations.counters();
  stats.properties = impl_->properties.counters();
  stats.verdicts = impl_->verdicts.counters();
  stats.monitors = impl_->monitors.counters();
  {
    // Counter snapshot is lock-free (relaxed atomics inside SessionTable);
    // stats polling must not contend with the monitor stepping hot path.
    const monitor::SessionCounters c = impl_->sessions.counters();
    stats.monitor.sessions_open = c.open;
    stats.monitor.sessions_peak = c.peak;
    stats.monitor.sessions_opened = c.opened;
    stats.monitor.idle_reclaimed = c.idle_reclaimed;
  }
  stats.monitor.steps = impl_->monitor_steps.load(std::memory_order_relaxed);
  stats.monitor.dooms = impl_->monitor_dooms.load(std::memory_order_relaxed);
  stats.queries_run = impl_->queries_run.load(std::memory_order_relaxed);
  stats.certificates_checked =
      impl_->certificates_checked.load(std::memory_order_relaxed);
  stats.certificates_failed =
      impl_->certificates_failed.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kNumStages; ++i) {
    impl_->stage_totals[i].snapshot_into(stats.stages.stages[i]);
  }
  return stats;
}

}  // namespace rlv

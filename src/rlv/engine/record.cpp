#include "rlv/engine/record.hpp"

#include <sstream>

#include "rlv/io/format.hpp"

namespace rlv {

namespace {

void append_word_array(std::ostream& out, const char* field,
                       const Alphabet& sigma, const Word& w) {
  out << ",\"" << field << "\":[";
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (i > 0) out << ',';
    out << '"' << json_escape(sigma.name(w[i])) << '"';
  }
  out << ']';
}

void append_counters(std::ostream& out, const char* name,
                     const CacheCounters& c) {
  out << '"' << name << "\":{\"hits\":" << c.hits
      << ",\"coalesced\":" << c.coalesced << ",\"misses\":" << c.misses
      << ",\"evictions\":" << c.evictions << '}';
}

}  // namespace

std::string render_stats(const EngineStats& stats) {
  std::ostringstream out;
  out << "{\"queries\":" << stats.queries_run
      << ",\"certificates_checked\":" << stats.certificates_checked
      << ",\"certificates_failed\":" << stats.certificates_failed
      << ",\"caches\":{";
  append_counters(out, "systems", stats.systems);
  out << ',';
  append_counters(out, "behaviors", stats.behaviors);
  out << ',';
  append_counters(out, "prefixes", stats.prefixes);
  out << ',';
  append_counters(out, "translations", stats.translations);
  out << ',';
  append_counters(out, "properties", stats.properties);
  out << ',';
  append_counters(out, "verdicts", stats.verdicts);
  out << ',';
  append_counters(out, "monitors", stats.monitors);
  out << ',';
  append_counters(out, "total", stats.total());
  out << "},\"monitor\":{\"sessions_open\":" << stats.monitor.sessions_open
      << ",\"sessions_peak\":" << stats.monitor.sessions_peak
      << ",\"sessions_total\":" << stats.monitor.sessions_opened
      << ",\"idle_reclaimed\":" << stats.monitor.idle_reclaimed
      << ",\"steps\":" << stats.monitor.steps
      << ",\"dooms\":" << stats.monitor.dooms << "},\"stages\":{";
  bool first = true;
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const StageMetrics& m = stats.stages.stages[i];
    if (m.calls == 0 && m.nanos == 0) continue;
    if (!first) out << ',';
    first = false;
    out << '"' << stage_name(static_cast<Stage>(i))
        << "\":{\"calls\":" << m.calls << ",\"states\":" << m.states_built
        << ",\"peak_frontier\":" << m.peak_antichain
        << ",\"peak_kernel_bytes\":" << m.peak_memory_bytes
        << ",\"ms\":" << static_cast<double>(m.nanos) / 1e6 << '}';
  }
  out << "}}";
  return out.str();
}

std::string render_stage_times(const QueryProfile& profile) {
  std::ostringstream out;
  out << '{';
  bool first = true;
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const StageMetrics& m = profile.stages[i];
    if (m.calls == 0 && m.nanos == 0) continue;
    if (!first) out << ',';
    first = false;
    out << '"' << stage_name(static_cast<Stage>(i))
        << "\":" << static_cast<double>(m.nanos) / 1e6;
  }
  out << '}';
  return out.str();
}

std::string render_query_record(std::size_t id, const Query& query,
                                const Verdict& v,
                                const std::string& system_label,
                                const std::string& property_label,
                                const CacheCounters& cache) {
  std::ostringstream out;
  out << "{\"id\":" << id << ",\"system\":\"" << json_escape(system_label)
      << "\",\"check\":\"" << check_kind_name(query.kind) << '"';
  if (!property_label.empty()) {
    out << ",\"property\":\"" << json_escape(property_label) << '"';
  } else {
    out << ",\"formula\":\"" << json_escape(query.formula) << '"';
  }
  out << ",\"ok\":" << (v.ok() ? "true" : "false");
  if (v.ok()) {
    out << ",\"holds\":" << (v.holds ? "true" : "false");
    // Witness symbols are ids over the system's alphabet; reparse the
    // (small) system text to render them as action names.
    if (v.violating_prefix) {
      const Nfa system = parse_system(query.system);
      const Alphabet& sigma = *system.alphabet();
      out << ",\"witness\":\""
          << json_escape(sigma.format(*v.violating_prefix)) << '"';
      append_word_array(out, "witness_prefix", sigma, *v.violating_prefix);
    } else if (v.counterexample) {
      const Nfa system = parse_system(query.system);
      const Alphabet& sigma = *system.alphabet();
      out << ",\"witness\":\""
          << json_escape(sigma.format(v.counterexample->prefix) + " (" +
                         sigma.format(v.counterexample->period) + ")^w")
          << '"';
      append_word_array(out, "witness_prefix", sigma,
                        v.counterexample->prefix);
      append_word_array(out, "witness_period", sigma,
                        v.counterexample->period);
    }
  } else if (v.resource_exhausted) {
    out << ",\"resource_exhausted\":true,\"stage\":\""
        << json_escape(v.exhausted_stage) << '"';
  } else {
    out << ",\"error\":\"" << json_escape(v.error) << '"';
  }
  out << ",\"ms\":" << v.millis << ",\"stages\":" << render_stage_times(v.profile)
      << ",\"cache\":{\"hits\":" << cache.hits
      << ",\"coalesced\":" << cache.coalesced << ",\"misses\":" << cache.misses
      << ",\"evictions\":" << cache.evictions << "}}";
  return out.str();
}

}  // namespace rlv

#pragma once

// The concurrent verification query engine: executes batches of
// (system, formula, check-kind) queries on a fixed-size thread pool while
// sharing every reusable intermediate across queries through hash-consed
// caches (see cache.hpp for the concurrency guarantees and query.hpp for
// the protocol types):
//
//   systems       raw text        → parsed Nfa (+ structural fingerprint)
//   behaviors     system          → lim(L) Büchi automaton (Definition 6.2)
//   prefixes      system          → trimmed pre(L_ω) NFA (Lemma 4.3's LHS)
//   translations  formula×Σ×sign  → GPVW Büchi automaton
//   verdicts      system×f×kind   → final Verdict
//
// Every check is a pure function of its query, so Engine::run returns
// verdicts bit-identical to sequential execution regardless of the worker
// count or the interleaving — the property test_engine.cpp pins down.
//
// Real verification workloads are many properties against few systems;
// the caches turn that shape into one parse, one limit construction, one
// pre(L_ω) trim per system, and one translation per formula polarity.

#include <cstddef>
#include <memory>
#include <vector>

#include "rlv/engine/query.hpp"

namespace rlv {

struct EngineOptions {
  /// Worker threads; 0 or 1 executes queries sequentially on the caller.
  std::size_t jobs = 1;
  /// Capacity (entries) of each automaton cache; verdict cache is 8x this.
  std::size_t cache_capacity = 256;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes the batch; results[i] answers queries[i]. Per-query failures
  /// (unparsable system, bad formula) are reported in Verdict::error, never
  /// thrown.
  [[nodiscard]] std::vector<Verdict> run(const std::vector<Query>& queries);

  /// Executes a single query through the same caches.
  [[nodiscard]] Verdict run_one(const Query& query);

  /// Cumulative cache counters and query totals since construction.
  [[nodiscard]] EngineStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rlv

#pragma once

// The concurrent verification query engine: executes batches of
// (system, formula, check-kind) queries on a fixed-size thread pool while
// sharing every reusable intermediate across queries through hash-consed
// caches (see cache.hpp for the concurrency guarantees and query.hpp for
// the protocol types):
//
//   systems       raw text        → parsed Nfa (+ structural fingerprint)
//   behaviors     system          → lim(L) Büchi automaton (Definition 6.2)
//   prefixes      system          → trimmed pre(L_ω) NFA (Lemma 4.3's LHS)
//   translations  formula×Σ×sign  → GPVW Büchi automaton
//   properties    aut text×Σ      → parsed + remapped property Büchi
//   verdicts      system×P×kind×algorithm → final Verdict
//
// Resource governance: with timeout_ms / max_states set, every query runs
// under its own rlv::Budget; a tripped limit yields a verdict with
// resource_exhausted set (and the tripping stage named) instead of a crash
// or a wrong boolean. Exhausted verdicts are never cached. Per-stage
// profiles are collected for every query (budgeted or not) and aggregated
// into EngineStats::stages.
//
// Every check is a pure function of its query, so Engine::run returns
// verdicts bit-identical to sequential execution regardless of the worker
// count or the interleaving — the property test_engine.cpp pins down.
//
// Intra-query parallelism (intra_query_threads / Query::threads) runs the
// Lemma 4.3 inclusion search itself on multiple threads. The boolean
// verdict is unaffected, but a violating prefix found by the parallel
// search depends on the interleaving (still a genuine counterexample —
// revalidate, don't byte-compare), so the bit-identical guarantee above
// holds only at the default of one intra-query thread. The knob is
// deliberately NOT part of the verdict cache key: all thread counts
// compute the same verdict, and whichever counterexample was cached first
// is as valid as any other.
//
// Real verification workloads are many properties against few systems;
// the caches turn that shape into one parse, one limit construction, one
// pre(L_ω) trim per system, and one translation per formula polarity.

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "rlv/engine/query.hpp"

namespace rlv {

struct EngineOptions {
  /// Worker threads; 0 or 1 executes queries sequentially on the caller.
  std::size_t jobs = 1;
  /// Capacity (entries) of each automaton cache; verdict cache is 8x this.
  std::size_t cache_capacity = 256;
  /// Lock shards per MemoCache (rounded up to a power of two). 0 = auto:
  /// jobs rounded up to a power of two, so a single-job engine keeps the
  /// classic whole-cache LRU order (and its exact eviction semantics)
  /// while a multi-worker server spreads lookups across shard mutexes.
  std::size_t cache_shards = 0;
  /// Per-query wall-clock deadline in milliseconds; 0 = unlimited. The
  /// clock starts when the query starts executing (not when the batch is
  /// submitted), so a slow sibling does not eat another query's budget.
  std::uint64_t timeout_ms = 0;
  /// Per-query cap on constructed states/configurations across all stages;
  /// 0 = unlimited.
  std::uint64_t max_states = 0;
  /// Default worker-thread count for the parallel inclusion search *inside*
  /// a single query; 0 or 1 = sequential. Overridable per query via
  /// Query::threads. Independent of `jobs`: the kernels spawn their own
  /// short-lived threads rather than borrowing the engine pool, so nested
  /// waiting cannot deadlock the batch.
  std::size_t intra_query_threads = 1;
  /// Re-check every negative verdict's witness with the independent
  /// certificate checker (rlv/cert/certificate.hpp) BEFORE the verdict
  /// enters the cache. A rejected witness is reported through
  /// Verdict::error and never cached; EngineStats counts the validations
  /// (certificates_checked / certificates_failed). Fairness counterexamples
  /// get a partial check (system membership + property violation — the
  /// fairness of the run itself is not re-established). Costs one explicit
  /// product per certified rs/rl verdict; see docs/usage.md §11.
  bool certify_verdicts = false;
  /// Global cap on concurrently open monitor sessions (the streaming
  /// subsystem's SessionTable); an open over the cap reports table_full —
  /// a deterministic overload, not an error. 0 = unlimited.
  std::size_t max_sessions = 65536;
  /// Per-session cap on total monitored events; a step batch that would
  /// exceed it is rejected whole with "event_cap". 0 = unlimited.
  std::uint64_t max_session_events = 0;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes the batch; results[i] answers queries[i]. Per-query failures
  /// (unparsable system, bad formula) are reported in Verdict::error, never
  /// thrown.
  [[nodiscard]] std::vector<Verdict> run(const std::vector<Query>& queries);

  /// Executes a single query through the same caches.
  [[nodiscard]] Verdict run_one(const Query& query);

  /// Asynchronous single-query submission — the serving hook. Enqueues the
  /// query on the engine pool and invokes `done` with the verdict on the
  /// worker thread that executed it. With jobs <= 1 the pool has no
  /// workers, so the query (and `done`) run inline on the caller — a
  /// resident server must therefore be given an engine with jobs >= 2 or
  /// its event loop executes queries itself. `done` must not throw. Every
  /// callback submitted before ~Engine runs to completion before the
  /// destructor returns (the pool drains its queue).
  void submit(Query query, std::function<void(Verdict)> done);

  // -------------------------------------------------------------------
  // Streaming doom monitoring (rlv/monitor): compile once, step O(1).

  /// Compiles (or fetches from the monitor-automaton cache) the monitor
  /// for the spec and opens a session at its initial state. Compilation
  /// runs under the engine-wide Budget defaults — this is the expensive
  /// call; route it through a worker (submit_monitor_open) in a server.
  [[nodiscard]] MonitorOpenResult open_monitor(const MonitorSpec& spec);

  /// Asynchronous open on the engine pool, mirroring submit(): with
  /// jobs <= 1 the open (and `done`) run inline on the caller.
  void submit_monitor_open(MonitorSpec spec,
                           std::function<void(MonitorOpenResult)> done);

  /// Applies a batch of actions to a session — the O(1)-per-event hot
  /// path; safe to call from an event loop. The batch is validated against
  /// the alphabet and the event cap before any of it is applied.
  [[nodiscard]] MonitorStepResult step_monitor(
      std::uint64_t session, const std::vector<std::string>& actions);

  [[nodiscard]] MonitorCloseResult close_monitor(std::uint64_t session);

  /// Closes every session idle for at least `max_idle_ms`; returns how
  /// many were reclaimed.
  std::size_t sweep_idle_sessions(std::uint64_t max_idle_ms);

  /// Cumulative cache counters and query totals since construction.
  [[nodiscard]] EngineStats stats() const;

  /// Pool worker threads (0 when jobs <= 1, i.e. inline execution).
  [[nodiscard]] std::size_t workers() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rlv

#pragma once

// JSON rendering of per-query result records — the line-oriented output
// format of the rlvd front end, factored out so tests can round-trip a
// record (render → re-parse → re-validate the witness) without spawning
// the tool. One record per query:
//
//   {"id":0,"system":"fig2.rlv","check":"rl","formula":"G F result",
//    "ok":true,"holds":false,
//    "witness":"req.req",                       // human-readable
//    "witness_prefix":["req","req"],            // machine-readable
//    "ms":0.42,"stages":{...},"cache":{...}}
//
// Lasso witnesses (rs/sat/fair) additionally carry "witness_period". The
// structured arrays list one ESCAPED action name per symbol — unlike the
// dot-joined "witness" string they are unambiguous even when action names
// contain dots, quotes, or backslashes, so they are what certificate
// round-trips should consume.

#include <cstddef>
#include <string>

#include "rlv/engine/query.hpp"

namespace rlv {

/// {"parse":0.01,...} — exclusive milliseconds of every stage that ran.
[[nodiscard]] std::string render_stage_times(const QueryProfile& profile);

/// Full EngineStats snapshot as one JSON object — the shared serialization
/// behind `rlvd`'s stderr summary / `--metrics` block and the rlv::net
/// server's `stats` response:
///
///   {"queries":6,"certificates_checked":4,"certificates_failed":0,
///    "caches":{"systems":{"hits":4,"misses":2,"evictions":0},...,
///              "total":{...}},
///    "stages":{"parse":{"calls":6,"states":0,"peak_frontier":0,"ms":0.1},
///              ...}}
///
/// Stages that never ran are omitted; the six caches and "total" are
/// always present.
[[nodiscard]] std::string render_stats(const EngineStats& stats);

/// Renders one rlvd result record. `system_label` / `property_label` are
/// presentation strings (the paths from the batch file; property empty for
/// the formula flavor). Witness symbols are rendered as action names by
/// reparsing the (small) system text of `query`. `cache` is the engine-wide
/// cumulative counter snapshot to embed.
[[nodiscard]] std::string render_query_record(std::size_t id,
                                              const Query& query,
                                              const Verdict& verdict,
                                              const std::string& system_label,
                                              const std::string& property_label,
                                              const CacheCounters& cache);

}  // namespace rlv

#include "rlv/engine/thread_pool.hpp"

#include <utility>

namespace rlv {

ThreadPool::ThreadPool(std::size_t num_workers) {
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace rlv

file(REMOVE_RECURSE
  "CMakeFiles/server_petri.dir/server_petri.cpp.o"
  "CMakeFiles/server_petri.dir/server_petri.cpp.o.d"
  "server_petri"
  "server_petri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_petri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for server_petri.
# This may be replaced when dependencies are built.

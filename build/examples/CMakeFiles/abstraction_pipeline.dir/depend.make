# Empty dependencies file for abstraction_pipeline.
# This may be replaced when dependencies are built.

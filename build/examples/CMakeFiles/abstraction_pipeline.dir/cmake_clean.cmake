file(REMOVE_RECURSE
  "CMakeFiles/abstraction_pipeline.dir/abstraction_pipeline.cpp.o"
  "CMakeFiles/abstraction_pipeline.dir/abstraction_pipeline.cpp.o.d"
  "abstraction_pipeline"
  "abstraction_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abstraction_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fair_implementation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fair_implementation.dir/fair_implementation.cpp.o"
  "CMakeFiles/fair_implementation.dir/fair_implementation.cpp.o.d"
  "fair_implementation"
  "fair_implementation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fair_implementation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

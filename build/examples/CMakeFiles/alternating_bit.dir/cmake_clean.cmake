file(REMOVE_RECURSE
  "CMakeFiles/alternating_bit.dir/alternating_bit.cpp.o"
  "CMakeFiles/alternating_bit.dir/alternating_bit.cpp.o.d"
  "alternating_bit"
  "alternating_bit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alternating_bit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

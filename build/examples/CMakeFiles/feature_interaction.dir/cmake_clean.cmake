file(REMOVE_RECURSE
  "CMakeFiles/feature_interaction.dir/feature_interaction.cpp.o"
  "CMakeFiles/feature_interaction.dir/feature_interaction.cpp.o.d"
  "feature_interaction"
  "feature_interaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for feature_interaction.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for doom_monitor.
# This may be replaced when dependencies are built.

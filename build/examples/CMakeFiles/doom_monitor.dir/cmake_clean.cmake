file(REMOVE_RECURSE
  "CMakeFiles/doom_monitor.dir/doom_monitor.cpp.o"
  "CMakeFiles/doom_monitor.dir/doom_monitor.cpp.o.d"
  "doom_monitor"
  "doom_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doom_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

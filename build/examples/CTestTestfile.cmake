# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;11;rlv_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_server_petri]=] "/root/repo/build/examples/server_petri")
set_tests_properties([=[example_server_petri]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;12;rlv_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_fair_implementation]=] "/root/repo/build/examples/fair_implementation")
set_tests_properties([=[example_fair_implementation]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;13;rlv_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_feature_interaction]=] "/root/repo/build/examples/feature_interaction")
set_tests_properties([=[example_feature_interaction]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;14;rlv_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_doom_monitor]=] "/root/repo/build/examples/doom_monitor")
set_tests_properties([=[example_doom_monitor]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;15;rlv_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_alternating_bit]=] "/root/repo/build/examples/alternating_bit")
set_tests_properties([=[example_alternating_bit]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;16;rlv_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_mutual_exclusion]=] "/root/repo/build/examples/mutual_exclusion")
set_tests_properties([=[example_mutual_exclusion]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;17;rlv_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_abstraction_pipeline]=] "/root/repo/build/examples/abstraction_pipeline" "2")
set_tests_properties([=[example_abstraction_pipeline]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")

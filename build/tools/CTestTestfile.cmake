# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[cli_sim_fig2]=] "/root/repo/build/tools/rlv_sim" "/root/repo/tools/samples/fig2.rlv" "--ltl" "G F result" "--steps" "60" "--seed" "5")
set_tests_properties([=[cli_sim_fig2]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_figures]=] "/root/repo/build/tools/rlv_figures" "/root/repo/build")
set_tests_properties([=[cli_figures]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_fig2_rl]=] "/root/repo/build/tools/rlv_check" "/root/repo/tools/samples/fig2.rlv" "--ltl" "G F result")
set_tests_properties([=[cli_fig2_rl]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_fig3_rl]=] "/root/repo/build/tools/rlv_check" "/root/repo/tools/samples/fig3.rlv" "--ltl" "G F result")
set_tests_properties([=[cli_fig3_rl]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_fig2_abstraction]=] "/root/repo/build/tools/rlv_check" "/root/repo/tools/samples/fig2.rlv" "--ltl" "G F result" "--hom" "/root/repo/tools/samples/abstraction.hom")
set_tests_properties([=[cli_fig2_abstraction]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_fig2_fair]=] "/root/repo/build/tools/rlv_check" "/root/repo/tools/samples/fig2.rlv" "--ltl" "G F result" "--check" "fair")
set_tests_properties([=[cli_fig2_fair]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_fig3_doom]=] "/root/repo/build/tools/rlv_check" "/root/repo/tools/samples/fig3.rlv" "--ltl" "G F result" "--check" "doom" "--trace" "request yes result lock request")
set_tests_properties([=[cli_fig3_doom]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_property_automaton]=] "/root/repo/build/tools/rlv_check" "/root/repo/tools/samples/fig2.rlv" "--property-aut" "/root/repo/tools/samples/gf_result.rlv")
set_tests_properties([=[cli_property_automaton]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;36;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_property_automaton_rs]=] "/root/repo/build/tools/rlv_check" "/root/repo/tools/samples/fig2.rlv" "--property-aut" "/root/repo/tools/samples/gf_result.rlv" "--check" "rs" "--explain")
set_tests_properties([=[cli_property_automaton_rs]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;39;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_doom_search]=] "/root/repo/build/tools/rlv_check" "/root/repo/tools/samples/fig3.rlv" "--ltl" "G F result" "--check" "doom" "--explain")
set_tests_properties([=[cli_doom_search]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;44;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_fig2_sat]=] "/root/repo/build/tools/rlv_check" "/root/repo/tools/samples/fig2.rlv" "--ltl" "G(result -> !(X result))" "--check" "sat")
set_tests_properties([=[cli_fig2_sat]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;48;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_fig2_synth]=] "/root/repo/build/tools/rlv_check" "/root/repo/tools/samples/fig2.rlv" "--ltl" "G F result" "--check" "synth")
set_tests_properties([=[cli_fig2_synth]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;51;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_fig2_fairweak]=] "/root/repo/build/tools/rlv_check" "/root/repo/tools/samples/fig2.rlv" "--ltl" "G F result" "--check" "fairweak")
set_tests_properties([=[cli_fig2_fairweak]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;54;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[cli_fig2_dot]=] "/root/repo/build/tools/rlv_check" "/root/repo/tools/samples/fig2.rlv" "--dot")
set_tests_properties([=[cli_fig2_dot]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;58;add_test;/root/repo/tools/CMakeLists.txt;0;")

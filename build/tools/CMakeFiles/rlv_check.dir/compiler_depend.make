# Empty compiler generated dependencies file for rlv_check.
# This may be replaced when dependencies are built.

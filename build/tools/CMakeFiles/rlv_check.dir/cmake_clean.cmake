file(REMOVE_RECURSE
  "CMakeFiles/rlv_check.dir/rlv_check.cpp.o"
  "CMakeFiles/rlv_check.dir/rlv_check.cpp.o.d"
  "rlv_check"
  "rlv_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlv_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

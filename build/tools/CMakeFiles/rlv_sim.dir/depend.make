# Empty dependencies file for rlv_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rlv_sim.dir/rlv_sim.cpp.o"
  "CMakeFiles/rlv_sim.dir/rlv_sim.cpp.o.d"
  "rlv_sim"
  "rlv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rlv_figures.dir/rlv_figures.cpp.o"
  "CMakeFiles/rlv_figures.dir/rlv_figures.cpp.o.d"
  "rlv_figures"
  "rlv_figures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlv_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rlv_figures.
# This may be replaced when dependencies are built.

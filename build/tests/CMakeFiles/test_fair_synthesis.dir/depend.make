# Empty dependencies file for test_fair_synthesis.
# This may be replaced when dependencies are built.

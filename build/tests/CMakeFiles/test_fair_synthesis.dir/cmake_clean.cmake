file(REMOVE_RECURSE
  "CMakeFiles/test_fair_synthesis.dir/test_fair_synthesis.cpp.o"
  "CMakeFiles/test_fair_synthesis.dir/test_fair_synthesis.cpp.o.d"
  "test_fair_synthesis"
  "test_fair_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fair_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

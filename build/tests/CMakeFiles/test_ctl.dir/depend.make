# Empty dependencies file for test_ctl.
# This may be replaced when dependencies are built.

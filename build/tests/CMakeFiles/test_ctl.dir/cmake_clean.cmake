file(REMOVE_RECURSE
  "CMakeFiles/test_ctl.dir/test_ctl.cpp.o"
  "CMakeFiles/test_ctl.dir/test_ctl.cpp.o.d"
  "test_ctl"
  "test_ctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

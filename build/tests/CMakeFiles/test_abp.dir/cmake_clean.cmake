file(REMOVE_RECURSE
  "CMakeFiles/test_abp.dir/test_abp.cpp.o"
  "CMakeFiles/test_abp.dir/test_abp.cpp.o.d"
  "test_abp"
  "test_abp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_abp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_omega.dir/test_omega.cpp.o"
  "CMakeFiles/test_omega.dir/test_omega.cpp.o.d"
  "test_omega"
  "test_omega.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_omega.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

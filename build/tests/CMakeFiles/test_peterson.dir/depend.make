# Empty dependencies file for test_peterson.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_peterson.dir/test_peterson.cpp.o"
  "CMakeFiles/test_peterson.dir/test_peterson.cpp.o.d"
  "test_peterson"
  "test_peterson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_peterson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

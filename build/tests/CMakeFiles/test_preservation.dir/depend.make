# Empty dependencies file for test_preservation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_preservation.dir/test_preservation.cpp.o"
  "CMakeFiles/test_preservation.dir/test_preservation.cpp.o.d"
  "test_preservation"
  "test_preservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

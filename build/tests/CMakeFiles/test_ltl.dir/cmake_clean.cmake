file(REMOVE_RECURSE
  "CMakeFiles/test_ltl.dir/test_ltl.cpp.o"
  "CMakeFiles/test_ltl.dir/test_ltl.cpp.o.d"
  "test_ltl"
  "test_ltl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ltl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_comp.
# This may be replaced when dependencies are built.

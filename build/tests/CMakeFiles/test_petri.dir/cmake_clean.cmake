file(REMOVE_RECURSE
  "CMakeFiles/test_petri.dir/test_petri.cpp.o"
  "CMakeFiles/test_petri.dir/test_petri.cpp.o.d"
  "test_petri"
  "test_petri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_petri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_petri.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_weak_fairness.
# This may be replaced when dependencies are built.

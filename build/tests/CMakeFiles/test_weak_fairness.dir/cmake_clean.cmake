file(REMOVE_RECURSE
  "CMakeFiles/test_weak_fairness.dir/test_weak_fairness.cpp.o"
  "CMakeFiles/test_weak_fairness.dir/test_weak_fairness.cpp.o.d"
  "test_weak_fairness"
  "test_weak_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_weak_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_philosophers.dir/test_philosophers.cpp.o"
  "CMakeFiles/test_philosophers.dir/test_philosophers.cpp.o.d"
  "test_philosophers"
  "test_philosophers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_philosophers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

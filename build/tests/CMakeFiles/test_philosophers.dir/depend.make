# Empty dependencies file for test_philosophers.
# This may be replaced when dependencies are built.

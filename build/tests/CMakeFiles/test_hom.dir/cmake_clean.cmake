file(REMOVE_RECURSE
  "CMakeFiles/test_hom.dir/test_hom.cpp.o"
  "CMakeFiles/test_hom.dir/test_hom.cpp.o.d"
  "test_hom"
  "test_hom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_hom.
# This may be replaced when dependencies are built.

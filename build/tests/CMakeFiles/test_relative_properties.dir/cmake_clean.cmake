file(REMOVE_RECURSE
  "CMakeFiles/test_relative_properties.dir/test_relative_properties.cpp.o"
  "CMakeFiles/test_relative_properties.dir/test_relative_properties.cpp.o.d"
  "test_relative_properties"
  "test_relative_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relative_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

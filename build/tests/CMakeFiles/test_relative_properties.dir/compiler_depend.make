# Empty compiler generated dependencies file for test_relative_properties.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_relative_liveness.dir/bench_relative_liveness.cpp.o"
  "CMakeFiles/bench_relative_liveness.dir/bench_relative_liveness.cpp.o.d"
  "bench_relative_liveness"
  "bench_relative_liveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_relative_liveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_relative_liveness.
# This may be replaced when dependencies are built.

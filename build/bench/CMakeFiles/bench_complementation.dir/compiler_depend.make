# Empty compiler generated dependencies file for bench_complementation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_complementation.dir/bench_complementation.cpp.o"
  "CMakeFiles/bench_complementation.dir/bench_complementation.cpp.o.d"
  "bench_complementation"
  "bench_complementation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_complementation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

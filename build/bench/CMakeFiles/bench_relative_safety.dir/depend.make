# Empty dependencies file for bench_relative_safety.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_relative_safety.dir/bench_relative_safety.cpp.o"
  "CMakeFiles/bench_relative_safety.dir/bench_relative_safety.cpp.o.d"
  "bench_relative_safety"
  "bench_relative_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_relative_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_guarded.dir/bench_guarded.cpp.o"
  "CMakeFiles/bench_guarded.dir/bench_guarded.cpp.o.d"
  "bench_guarded"
  "bench_guarded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_guarded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

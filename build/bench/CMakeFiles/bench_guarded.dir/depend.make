# Empty dependencies file for bench_guarded.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fair_synthesis.dir/bench_fair_synthesis.cpp.o"
  "CMakeFiles/bench_fair_synthesis.dir/bench_fair_synthesis.cpp.o.d"
  "bench_fair_synthesis"
  "bench_fair_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fair_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

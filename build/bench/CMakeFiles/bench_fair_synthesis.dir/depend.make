# Empty dependencies file for bench_fair_synthesis.
# This may be replaced when dependencies are built.

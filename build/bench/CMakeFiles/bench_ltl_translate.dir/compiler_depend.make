# Empty compiler generated dependencies file for bench_ltl_translate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ltl_translate.dir/bench_ltl_translate.cpp.o"
  "CMakeFiles/bench_ltl_translate.dir/bench_ltl_translate.cpp.o.d"
  "bench_ltl_translate"
  "bench_ltl_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ltl_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

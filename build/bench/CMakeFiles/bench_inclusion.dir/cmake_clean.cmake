file(REMOVE_RECURSE
  "CMakeFiles/bench_inclusion.dir/bench_inclusion.cpp.o"
  "CMakeFiles/bench_inclusion.dir/bench_inclusion.cpp.o.d"
  "bench_inclusion"
  "bench_inclusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inclusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_inclusion.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_compositional.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_compositional.dir/bench_compositional.cpp.o"
  "CMakeFiles/bench_compositional.dir/bench_compositional.cpp.o.d"
  "bench_compositional"
  "bench_compositional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compositional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

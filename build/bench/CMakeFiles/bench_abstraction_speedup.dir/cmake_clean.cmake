file(REMOVE_RECURSE
  "CMakeFiles/bench_abstraction_speedup.dir/bench_abstraction_speedup.cpp.o"
  "CMakeFiles/bench_abstraction_speedup.dir/bench_abstraction_speedup.cpp.o.d"
  "bench_abstraction_speedup"
  "bench_abstraction_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abstraction_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_abstraction_speedup.
# This may be replaced when dependencies are built.

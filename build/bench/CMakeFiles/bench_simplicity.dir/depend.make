# Empty dependencies file for bench_simplicity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_simplicity.dir/bench_simplicity.cpp.o"
  "CMakeFiles/bench_simplicity.dir/bench_simplicity.cpp.o.d"
  "bench_simplicity"
  "bench_simplicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simplicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

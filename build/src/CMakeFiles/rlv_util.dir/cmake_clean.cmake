file(REMOVE_RECURSE
  "CMakeFiles/rlv_util.dir/rlv/util/scc.cpp.o"
  "CMakeFiles/rlv_util.dir/rlv/util/scc.cpp.o.d"
  "librlv_util.a"
  "librlv_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlv_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librlv_util.a"
)

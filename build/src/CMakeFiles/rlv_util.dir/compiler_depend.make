# Empty compiler generated dependencies file for rlv_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rlv_petri.dir/rlv/petri/net.cpp.o"
  "CMakeFiles/rlv_petri.dir/rlv/petri/net.cpp.o.d"
  "CMakeFiles/rlv_petri.dir/rlv/petri/reachability.cpp.o"
  "CMakeFiles/rlv_petri.dir/rlv/petri/reachability.cpp.o.d"
  "librlv_petri.a"
  "librlv_petri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlv_petri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

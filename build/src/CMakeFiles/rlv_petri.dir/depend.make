# Empty dependencies file for rlv_petri.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librlv_petri.a"
)

# Empty compiler generated dependencies file for rlv_omega.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rlv/omega/buchi.cpp" "src/CMakeFiles/rlv_omega.dir/rlv/omega/buchi.cpp.o" "gcc" "src/CMakeFiles/rlv_omega.dir/rlv/omega/buchi.cpp.o.d"
  "/root/repo/src/rlv/omega/complement.cpp" "src/CMakeFiles/rlv_omega.dir/rlv/omega/complement.cpp.o" "gcc" "src/CMakeFiles/rlv_omega.dir/rlv/omega/complement.cpp.o.d"
  "/root/repo/src/rlv/omega/emptiness.cpp" "src/CMakeFiles/rlv_omega.dir/rlv/omega/emptiness.cpp.o" "gcc" "src/CMakeFiles/rlv_omega.dir/rlv/omega/emptiness.cpp.o.d"
  "/root/repo/src/rlv/omega/expr.cpp" "src/CMakeFiles/rlv_omega.dir/rlv/omega/expr.cpp.o" "gcc" "src/CMakeFiles/rlv_omega.dir/rlv/omega/expr.cpp.o.d"
  "/root/repo/src/rlv/omega/lasso.cpp" "src/CMakeFiles/rlv_omega.dir/rlv/omega/lasso.cpp.o" "gcc" "src/CMakeFiles/rlv_omega.dir/rlv/omega/lasso.cpp.o.d"
  "/root/repo/src/rlv/omega/limit.cpp" "src/CMakeFiles/rlv_omega.dir/rlv/omega/limit.cpp.o" "gcc" "src/CMakeFiles/rlv_omega.dir/rlv/omega/limit.cpp.o.d"
  "/root/repo/src/rlv/omega/live.cpp" "src/CMakeFiles/rlv_omega.dir/rlv/omega/live.cpp.o" "gcc" "src/CMakeFiles/rlv_omega.dir/rlv/omega/live.cpp.o.d"
  "/root/repo/src/rlv/omega/product.cpp" "src/CMakeFiles/rlv_omega.dir/rlv/omega/product.cpp.o" "gcc" "src/CMakeFiles/rlv_omega.dir/rlv/omega/product.cpp.o.d"
  "/root/repo/src/rlv/omega/reduce.cpp" "src/CMakeFiles/rlv_omega.dir/rlv/omega/reduce.cpp.o" "gcc" "src/CMakeFiles/rlv_omega.dir/rlv/omega/reduce.cpp.o.d"
  "/root/repo/src/rlv/omega/streett.cpp" "src/CMakeFiles/rlv_omega.dir/rlv/omega/streett.cpp.o" "gcc" "src/CMakeFiles/rlv_omega.dir/rlv/omega/streett.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rlv_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

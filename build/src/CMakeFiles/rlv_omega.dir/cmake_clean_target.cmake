file(REMOVE_RECURSE
  "librlv_omega.a"
)

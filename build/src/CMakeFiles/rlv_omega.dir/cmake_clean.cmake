file(REMOVE_RECURSE
  "CMakeFiles/rlv_omega.dir/rlv/omega/buchi.cpp.o"
  "CMakeFiles/rlv_omega.dir/rlv/omega/buchi.cpp.o.d"
  "CMakeFiles/rlv_omega.dir/rlv/omega/complement.cpp.o"
  "CMakeFiles/rlv_omega.dir/rlv/omega/complement.cpp.o.d"
  "CMakeFiles/rlv_omega.dir/rlv/omega/emptiness.cpp.o"
  "CMakeFiles/rlv_omega.dir/rlv/omega/emptiness.cpp.o.d"
  "CMakeFiles/rlv_omega.dir/rlv/omega/expr.cpp.o"
  "CMakeFiles/rlv_omega.dir/rlv/omega/expr.cpp.o.d"
  "CMakeFiles/rlv_omega.dir/rlv/omega/lasso.cpp.o"
  "CMakeFiles/rlv_omega.dir/rlv/omega/lasso.cpp.o.d"
  "CMakeFiles/rlv_omega.dir/rlv/omega/limit.cpp.o"
  "CMakeFiles/rlv_omega.dir/rlv/omega/limit.cpp.o.d"
  "CMakeFiles/rlv_omega.dir/rlv/omega/live.cpp.o"
  "CMakeFiles/rlv_omega.dir/rlv/omega/live.cpp.o.d"
  "CMakeFiles/rlv_omega.dir/rlv/omega/product.cpp.o"
  "CMakeFiles/rlv_omega.dir/rlv/omega/product.cpp.o.d"
  "CMakeFiles/rlv_omega.dir/rlv/omega/reduce.cpp.o"
  "CMakeFiles/rlv_omega.dir/rlv/omega/reduce.cpp.o.d"
  "CMakeFiles/rlv_omega.dir/rlv/omega/streett.cpp.o"
  "CMakeFiles/rlv_omega.dir/rlv/omega/streett.cpp.o.d"
  "librlv_omega.a"
  "librlv_omega.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlv_omega.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rlv_gen.dir/rlv/gen/families.cpp.o"
  "CMakeFiles/rlv_gen.dir/rlv/gen/families.cpp.o.d"
  "CMakeFiles/rlv_gen.dir/rlv/gen/guarded.cpp.o"
  "CMakeFiles/rlv_gen.dir/rlv/gen/guarded.cpp.o.d"
  "CMakeFiles/rlv_gen.dir/rlv/gen/random.cpp.o"
  "CMakeFiles/rlv_gen.dir/rlv/gen/random.cpp.o.d"
  "librlv_gen.a"
  "librlv_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlv_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librlv_gen.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rlv/gen/families.cpp" "src/CMakeFiles/rlv_gen.dir/rlv/gen/families.cpp.o" "gcc" "src/CMakeFiles/rlv_gen.dir/rlv/gen/families.cpp.o.d"
  "/root/repo/src/rlv/gen/guarded.cpp" "src/CMakeFiles/rlv_gen.dir/rlv/gen/guarded.cpp.o" "gcc" "src/CMakeFiles/rlv_gen.dir/rlv/gen/guarded.cpp.o.d"
  "/root/repo/src/rlv/gen/random.cpp" "src/CMakeFiles/rlv_gen.dir/rlv/gen/random.cpp.o" "gcc" "src/CMakeFiles/rlv_gen.dir/rlv/gen/random.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rlv_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlv_omega.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlv_ltl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlv_hom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlv_petri.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlv_comp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

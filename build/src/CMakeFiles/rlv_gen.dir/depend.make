# Empty dependencies file for rlv_gen.
# This may be replaced when dependencies are built.

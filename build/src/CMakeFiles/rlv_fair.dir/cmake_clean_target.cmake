file(REMOVE_RECURSE
  "librlv_fair.a"
)

# Empty compiler generated dependencies file for rlv_fair.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rlv_fair.dir/rlv/fair/fair_check.cpp.o"
  "CMakeFiles/rlv_fair.dir/rlv/fair/fair_check.cpp.o.d"
  "CMakeFiles/rlv_fair.dir/rlv/fair/fairness.cpp.o"
  "CMakeFiles/rlv_fair.dir/rlv/fair/fairness.cpp.o.d"
  "CMakeFiles/rlv_fair.dir/rlv/fair/simulate.cpp.o"
  "CMakeFiles/rlv_fair.dir/rlv/fair/simulate.cpp.o.d"
  "librlv_fair.a"
  "librlv_fair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlv_fair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

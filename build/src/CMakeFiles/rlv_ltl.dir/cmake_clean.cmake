file(REMOVE_RECURSE
  "CMakeFiles/rlv_ltl.dir/rlv/ltl/ast.cpp.o"
  "CMakeFiles/rlv_ltl.dir/rlv/ltl/ast.cpp.o.d"
  "CMakeFiles/rlv_ltl.dir/rlv/ltl/eval.cpp.o"
  "CMakeFiles/rlv_ltl.dir/rlv/ltl/eval.cpp.o.d"
  "CMakeFiles/rlv_ltl.dir/rlv/ltl/parser.cpp.o"
  "CMakeFiles/rlv_ltl.dir/rlv/ltl/parser.cpp.o.d"
  "CMakeFiles/rlv_ltl.dir/rlv/ltl/patterns.cpp.o"
  "CMakeFiles/rlv_ltl.dir/rlv/ltl/patterns.cpp.o.d"
  "CMakeFiles/rlv_ltl.dir/rlv/ltl/pnf.cpp.o"
  "CMakeFiles/rlv_ltl.dir/rlv/ltl/pnf.cpp.o.d"
  "CMakeFiles/rlv_ltl.dir/rlv/ltl/simplify.cpp.o"
  "CMakeFiles/rlv_ltl.dir/rlv/ltl/simplify.cpp.o.d"
  "CMakeFiles/rlv_ltl.dir/rlv/ltl/transform.cpp.o"
  "CMakeFiles/rlv_ltl.dir/rlv/ltl/transform.cpp.o.d"
  "CMakeFiles/rlv_ltl.dir/rlv/ltl/translate.cpp.o"
  "CMakeFiles/rlv_ltl.dir/rlv/ltl/translate.cpp.o.d"
  "librlv_ltl.a"
  "librlv_ltl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlv_ltl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rlv/ltl/ast.cpp" "src/CMakeFiles/rlv_ltl.dir/rlv/ltl/ast.cpp.o" "gcc" "src/CMakeFiles/rlv_ltl.dir/rlv/ltl/ast.cpp.o.d"
  "/root/repo/src/rlv/ltl/eval.cpp" "src/CMakeFiles/rlv_ltl.dir/rlv/ltl/eval.cpp.o" "gcc" "src/CMakeFiles/rlv_ltl.dir/rlv/ltl/eval.cpp.o.d"
  "/root/repo/src/rlv/ltl/parser.cpp" "src/CMakeFiles/rlv_ltl.dir/rlv/ltl/parser.cpp.o" "gcc" "src/CMakeFiles/rlv_ltl.dir/rlv/ltl/parser.cpp.o.d"
  "/root/repo/src/rlv/ltl/patterns.cpp" "src/CMakeFiles/rlv_ltl.dir/rlv/ltl/patterns.cpp.o" "gcc" "src/CMakeFiles/rlv_ltl.dir/rlv/ltl/patterns.cpp.o.d"
  "/root/repo/src/rlv/ltl/pnf.cpp" "src/CMakeFiles/rlv_ltl.dir/rlv/ltl/pnf.cpp.o" "gcc" "src/CMakeFiles/rlv_ltl.dir/rlv/ltl/pnf.cpp.o.d"
  "/root/repo/src/rlv/ltl/simplify.cpp" "src/CMakeFiles/rlv_ltl.dir/rlv/ltl/simplify.cpp.o" "gcc" "src/CMakeFiles/rlv_ltl.dir/rlv/ltl/simplify.cpp.o.d"
  "/root/repo/src/rlv/ltl/transform.cpp" "src/CMakeFiles/rlv_ltl.dir/rlv/ltl/transform.cpp.o" "gcc" "src/CMakeFiles/rlv_ltl.dir/rlv/ltl/transform.cpp.o.d"
  "/root/repo/src/rlv/ltl/translate.cpp" "src/CMakeFiles/rlv_ltl.dir/rlv/ltl/translate.cpp.o" "gcc" "src/CMakeFiles/rlv_ltl.dir/rlv/ltl/translate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rlv_omega.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlv_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

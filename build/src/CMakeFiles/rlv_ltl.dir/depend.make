# Empty dependencies file for rlv_ltl.
# This may be replaced when dependencies are built.

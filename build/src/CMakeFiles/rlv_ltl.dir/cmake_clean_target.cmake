file(REMOVE_RECURSE
  "librlv_ltl.a"
)

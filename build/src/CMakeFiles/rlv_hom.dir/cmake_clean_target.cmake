file(REMOVE_RECURSE
  "librlv_hom.a"
)

# Empty dependencies file for rlv_hom.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rlv_hom.dir/rlv/hom/homomorphism.cpp.o"
  "CMakeFiles/rlv_hom.dir/rlv/hom/homomorphism.cpp.o.d"
  "CMakeFiles/rlv_hom.dir/rlv/hom/image.cpp.o"
  "CMakeFiles/rlv_hom.dir/rlv/hom/image.cpp.o.d"
  "CMakeFiles/rlv_hom.dir/rlv/hom/simplicity.cpp.o"
  "CMakeFiles/rlv_hom.dir/rlv/hom/simplicity.cpp.o.d"
  "librlv_hom.a"
  "librlv_hom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlv_hom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librlv_comp.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/rlv_comp.dir/rlv/comp/abstraction.cpp.o"
  "CMakeFiles/rlv_comp.dir/rlv/comp/abstraction.cpp.o.d"
  "CMakeFiles/rlv_comp.dir/rlv/comp/sync.cpp.o"
  "CMakeFiles/rlv_comp.dir/rlv/comp/sync.cpp.o.d"
  "librlv_comp.a"
  "librlv_comp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlv_comp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rlv_comp.
# This may be replaced when dependencies are built.

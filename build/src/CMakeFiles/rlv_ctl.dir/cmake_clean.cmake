file(REMOVE_RECURSE
  "CMakeFiles/rlv_ctl.dir/rlv/ctl/ctl.cpp.o"
  "CMakeFiles/rlv_ctl.dir/rlv/ctl/ctl.cpp.o.d"
  "librlv_ctl.a"
  "librlv_ctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlv_ctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for rlv_ctl.
# This may be replaced when dependencies are built.

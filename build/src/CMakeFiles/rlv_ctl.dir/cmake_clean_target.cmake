file(REMOVE_RECURSE
  "librlv_ctl.a"
)

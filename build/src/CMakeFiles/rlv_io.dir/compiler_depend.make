# Empty compiler generated dependencies file for rlv_io.
# This may be replaced when dependencies are built.

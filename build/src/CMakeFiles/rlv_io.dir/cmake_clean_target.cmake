file(REMOVE_RECURSE
  "librlv_io.a"
)

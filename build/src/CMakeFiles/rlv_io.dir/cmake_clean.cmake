file(REMOVE_RECURSE
  "CMakeFiles/rlv_io.dir/rlv/io/format.cpp.o"
  "CMakeFiles/rlv_io.dir/rlv/io/format.cpp.o.d"
  "librlv_io.a"
  "librlv_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlv_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

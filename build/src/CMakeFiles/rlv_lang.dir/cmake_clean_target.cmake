file(REMOVE_RECURSE
  "librlv_lang.a"
)

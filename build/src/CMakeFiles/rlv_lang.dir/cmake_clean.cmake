file(REMOVE_RECURSE
  "CMakeFiles/rlv_lang.dir/rlv/lang/alphabet.cpp.o"
  "CMakeFiles/rlv_lang.dir/rlv/lang/alphabet.cpp.o.d"
  "CMakeFiles/rlv_lang.dir/rlv/lang/dfa.cpp.o"
  "CMakeFiles/rlv_lang.dir/rlv/lang/dfa.cpp.o.d"
  "CMakeFiles/rlv_lang.dir/rlv/lang/inclusion.cpp.o"
  "CMakeFiles/rlv_lang.dir/rlv/lang/inclusion.cpp.o.d"
  "CMakeFiles/rlv_lang.dir/rlv/lang/nfa.cpp.o"
  "CMakeFiles/rlv_lang.dir/rlv/lang/nfa.cpp.o.d"
  "CMakeFiles/rlv_lang.dir/rlv/lang/ops.cpp.o"
  "CMakeFiles/rlv_lang.dir/rlv/lang/ops.cpp.o.d"
  "CMakeFiles/rlv_lang.dir/rlv/lang/quotient.cpp.o"
  "CMakeFiles/rlv_lang.dir/rlv/lang/quotient.cpp.o.d"
  "librlv_lang.a"
  "librlv_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlv_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for rlv_lang.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rlv/lang/alphabet.cpp" "src/CMakeFiles/rlv_lang.dir/rlv/lang/alphabet.cpp.o" "gcc" "src/CMakeFiles/rlv_lang.dir/rlv/lang/alphabet.cpp.o.d"
  "/root/repo/src/rlv/lang/dfa.cpp" "src/CMakeFiles/rlv_lang.dir/rlv/lang/dfa.cpp.o" "gcc" "src/CMakeFiles/rlv_lang.dir/rlv/lang/dfa.cpp.o.d"
  "/root/repo/src/rlv/lang/inclusion.cpp" "src/CMakeFiles/rlv_lang.dir/rlv/lang/inclusion.cpp.o" "gcc" "src/CMakeFiles/rlv_lang.dir/rlv/lang/inclusion.cpp.o.d"
  "/root/repo/src/rlv/lang/nfa.cpp" "src/CMakeFiles/rlv_lang.dir/rlv/lang/nfa.cpp.o" "gcc" "src/CMakeFiles/rlv_lang.dir/rlv/lang/nfa.cpp.o.d"
  "/root/repo/src/rlv/lang/ops.cpp" "src/CMakeFiles/rlv_lang.dir/rlv/lang/ops.cpp.o" "gcc" "src/CMakeFiles/rlv_lang.dir/rlv/lang/ops.cpp.o.d"
  "/root/repo/src/rlv/lang/quotient.cpp" "src/CMakeFiles/rlv_lang.dir/rlv/lang/quotient.cpp.o" "gcc" "src/CMakeFiles/rlv_lang.dir/rlv/lang/quotient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rlv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rlv/core/decomposition.cpp" "src/CMakeFiles/rlv_core.dir/rlv/core/decomposition.cpp.o" "gcc" "src/CMakeFiles/rlv_core.dir/rlv/core/decomposition.cpp.o.d"
  "/root/repo/src/rlv/core/fair_synthesis.cpp" "src/CMakeFiles/rlv_core.dir/rlv/core/fair_synthesis.cpp.o" "gcc" "src/CMakeFiles/rlv_core.dir/rlv/core/fair_synthesis.cpp.o.d"
  "/root/repo/src/rlv/core/machine_closure.cpp" "src/CMakeFiles/rlv_core.dir/rlv/core/machine_closure.cpp.o" "gcc" "src/CMakeFiles/rlv_core.dir/rlv/core/machine_closure.cpp.o.d"
  "/root/repo/src/rlv/core/monitor.cpp" "src/CMakeFiles/rlv_core.dir/rlv/core/monitor.cpp.o" "gcc" "src/CMakeFiles/rlv_core.dir/rlv/core/monitor.cpp.o.d"
  "/root/repo/src/rlv/core/preservation.cpp" "src/CMakeFiles/rlv_core.dir/rlv/core/preservation.cpp.o" "gcc" "src/CMakeFiles/rlv_core.dir/rlv/core/preservation.cpp.o.d"
  "/root/repo/src/rlv/core/relative.cpp" "src/CMakeFiles/rlv_core.dir/rlv/core/relative.cpp.o" "gcc" "src/CMakeFiles/rlv_core.dir/rlv/core/relative.cpp.o.d"
  "/root/repo/src/rlv/core/topology.cpp" "src/CMakeFiles/rlv_core.dir/rlv/core/topology.cpp.o" "gcc" "src/CMakeFiles/rlv_core.dir/rlv/core/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rlv_omega.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlv_ltl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlv_hom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlv_fair.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlv_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rlv_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

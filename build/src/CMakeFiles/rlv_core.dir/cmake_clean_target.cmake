file(REMOVE_RECURSE
  "librlv_core.a"
)

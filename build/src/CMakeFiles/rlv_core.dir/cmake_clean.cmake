file(REMOVE_RECURSE
  "CMakeFiles/rlv_core.dir/rlv/core/decomposition.cpp.o"
  "CMakeFiles/rlv_core.dir/rlv/core/decomposition.cpp.o.d"
  "CMakeFiles/rlv_core.dir/rlv/core/fair_synthesis.cpp.o"
  "CMakeFiles/rlv_core.dir/rlv/core/fair_synthesis.cpp.o.d"
  "CMakeFiles/rlv_core.dir/rlv/core/machine_closure.cpp.o"
  "CMakeFiles/rlv_core.dir/rlv/core/machine_closure.cpp.o.d"
  "CMakeFiles/rlv_core.dir/rlv/core/monitor.cpp.o"
  "CMakeFiles/rlv_core.dir/rlv/core/monitor.cpp.o.d"
  "CMakeFiles/rlv_core.dir/rlv/core/preservation.cpp.o"
  "CMakeFiles/rlv_core.dir/rlv/core/preservation.cpp.o.d"
  "CMakeFiles/rlv_core.dir/rlv/core/relative.cpp.o"
  "CMakeFiles/rlv_core.dir/rlv/core/relative.cpp.o.d"
  "CMakeFiles/rlv_core.dir/rlv/core/topology.cpp.o"
  "CMakeFiles/rlv_core.dir/rlv/core/topology.cpp.o.d"
  "librlv_core.a"
  "librlv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

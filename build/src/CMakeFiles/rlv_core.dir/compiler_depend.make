# Empty compiler generated dependencies file for rlv_core.
# This may be replaced when dependencies are built.

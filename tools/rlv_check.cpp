// rlv_check — command-line front end for the library.
//
// Usage:
//   rlv_check <system-file> --ltl "<formula>" [options]
//   rlv_check --petri-file <net.pn> --ltl "<formula>" [options]
//
// The system file uses the format of rlv/io/format.hpp and is interpreted
// as a transition system (prefix-closed behavior language; its ω-behaviors
// are the limit). With --petri-file the system is instead the budget-
// governed unfolding of a textual Petri net (rlv/petri/format.hpp):
//
//   --petri-file <f>       unfold the net's reachability graph and use it
//                          as the system (alphabet = transition labels)
//   --petri-max-states N   unfolding state cap (ResourceExhausted → exit 3)
//   --petri-timeout-ms N   unfolding wall-clock deadline (idem)
//   --net-hom              derive the abstraction homomorphism from the
//                          net's `hide:` annotation and run the Sections
//                          6-8 pipeline (like --hom, no extra file needed)
//
// Modes:
//
//   --check rl          relative liveness (default)
//   --check rs          relative safety
//   --check sat         classical satisfaction
//   --check fair        all strongly fair runs satisfy the formula?
//   --check fairweak    same under weak (justice) transition fairness
//   --check synth       Theorem 5.1 synthesis; prints the implementation
//   --check doom        monitor a trace (--trace "a b c"): report when the
//                       property stops being realizable (relative-liveness
//                       doom detection)
//   --check monitor     offline replay of the streaming monitor: compile
//                       the rlv::monitor automaton once, replay a trace
//                       (--trace or --trace-file, whitespace-separated
//                       actions) step by step, print each verdict change;
//                       with --certify the doomed-prefix certificate is
//                       validated by the independent checker
//   --hom <file>        run the abstraction pipeline (Sections 6-8): check
//                       the formula on the abstraction, certify simplicity,
//                       transfer by Theorem 8.2/8.3
//   --property-aut <f>  property given as a Büchi automaton file instead of
//                       --ltl (relative safety then uses rank-based
//                       complementation — exponential, keep it small)
//   --explain           annotate witnesses with the state sets they
//                       traverse: the counterexample lassos of rs/sat and
//                       the violating prefix of rl
//   --threads N         run the relative-liveness inclusion search on N
//                       threads (verdict unchanged; a violating prefix may
//                       differ from the sequential one but is always valid)
//   --certify           re-check the witness of a negative rl/rs/sat verdict
//                       with the independent certificate checker
//                       (rlv/cert/certificate.hpp) and print the outcome; an
//                       INVALID certificate exits 2 — the verdict cannot be
//                       trusted
//   --dot               print the system in GraphViz format and exit
//
// Exit status: 0 = property verdict positive, 1 = negative, 2 = usage or
// input error (including a failed --certify), 3 = no sound conclusion
// (abstraction pipeline, non-simple).

#include <cctype>
#include <chrono>
#include <cstdio>
#include <optional>
#include <cstdlib>
#include <cstring>
#include <string>

#include "rlv/cert/certificate.hpp"
#include "rlv/core/fair_synthesis.hpp"
#include "rlv/core/monitor.hpp"
#include "rlv/core/preservation.hpp"
#include "rlv/core/relative.hpp"
#include "rlv/fair/fair_check.hpp"
#include "rlv/hom/image.hpp"
#include "rlv/io/format.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/pnf.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/lasso.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/petri/format.hpp"
#include "rlv/petri/reachability.hpp"
#include "rlv/petri/scenario.hpp"
#include "rlv/util/budget.hpp"

namespace {

using namespace rlv;

int usage() {
  std::fprintf(stderr,
               "usage: rlv_check <system-file> --ltl \"<formula>\"\n"
               "       rlv_check --petri-file <net.pn> --ltl \"<formula>\"\n"
               "       [--check rl|rs|sat|fair|fairweak|synth|doom|monitor]\n"
               "       [--trace \"<a b c>\"] [--trace-file <file>] [--hom <file>]\n"
               "       [--property-aut <file>] [--explain] [--threads N]\n"
               "       [--certify] [--dot]\n"
               "       [--net-hom] [--petri-max-states N] [--petri-timeout-ms N]\n"
               "  --explain annotates rl doomed prefixes and rs/sat lassos\n"
               "  --certify re-checks negative rl/rs/sat witnesses with the\n"
               "            independent certificate checker (INVALID exits 2)\n"
               "  --petri-file unfolds a 1-safe net (rlv/petri/format.hpp) into\n"
               "            its reachability graph and checks that system;\n"
               "            --net-hom derives the abstraction from its hide\n"
               "            annotation, the budget flags bound the unfolding\n"
               "            (trip -> 'resource_exhausted', exit 3)\n");
  return 2;
}

/// Prints the validation outcome; returns the process exit code to use in
/// place of `verdict_code` (2 when the certificate failed).
int report_certificate(const cert::Validation& validation, int verdict_code) {
  if (!validation.valid) {
    std::printf("certificate: INVALID (%s)\n", validation.reason.c_str());
    return 2;
  }
  if (validation.checked) {
    std::printf("certificate: VALID\n");
  } else {
    std::printf("certificate: not checked (%s)\n", validation.reason.c_str());
  }
  return verdict_code;
}

void print_lasso(const char* label, const Lasso& lasso,
                 const AlphabetRef& sigma) {
  std::printf("%s: %s (%s)^w\n", label, sigma->format(lasso.prefix).c_str(),
              sigma->format(lasso.period).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string system_path;
  std::string petri_path;
  std::string formula_text;
  std::string mode = "rl";
  std::string hom_path;
  std::string trace_text;
  std::string trace_file;
  std::string property_path;
  bool dot = false;
  bool explain = false;
  bool certify = false;
  bool net_hom = false;
  long petri_max_states = 0;
  long petri_timeout_ms = 0;
  std::size_t threads = 1;

  int first_flag = 1;
  if (argv[1][0] != '-') {
    system_path = argv[1];
    first_flag = 2;
  }
  for (int i = first_flag; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--ltl" && i + 1 < argc) {
      formula_text = argv[++i];
    } else if (arg == "--check" && i + 1 < argc) {
      mode = argv[++i];
    } else if (arg == "--hom" && i + 1 < argc) {
      hom_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_text = argv[++i];
    } else if (arg == "--trace-file" && i + 1 < argc) {
      trace_file = argv[++i];
    } else if (arg == "--property-aut" && i + 1 < argc) {
      property_path = argv[++i];
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--certify") {
      certify = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      const int n = std::atoi(argv[++i]);
      if (n <= 0) return usage();
      threads = static_cast<std::size_t>(n);
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--petri-file" && i + 1 < argc) {
      petri_path = argv[++i];
    } else if (arg == "--net-hom") {
      net_hom = true;
    } else if (arg == "--petri-max-states" && i + 1 < argc) {
      petri_max_states = std::atol(argv[++i]);
      if (petri_max_states <= 0) return usage();
    } else if (arg == "--petri-timeout-ms" && i + 1 < argc) {
      petri_timeout_ms = std::atol(argv[++i]);
      if (petri_timeout_ms <= 0) return usage();
    } else {
      return usage();
    }
  }
  // Exactly one system source: a transition-system file or a Petri net.
  if (system_path.empty() == petri_path.empty()) return usage();
  if (net_hom && petri_path.empty()) return usage();

  try {
    petri::NetFile netfile;
    const Nfa system = [&]() -> Nfa {
      if (petri_path.empty()) return parse_system(read_file(system_path));
      netfile = petri::parse_net(read_file(petri_path));
      Budget unfold_budget;
      const bool governed = petri_max_states > 0 || petri_timeout_ms > 0;
      if (petri_max_states > 0) {
        unfold_budget.set_max_states(
            static_cast<std::uint64_t>(petri_max_states));
      }
      if (petri_timeout_ms > 0) {
        unfold_budget.set_deadline_in(
            std::chrono::milliseconds(petri_timeout_ms));
      }
      ReachabilityGraph graph = build_reachability_graph(
          netfile.net, {}, governed ? &unfold_budget : nullptr);
      std::printf("petri unfold: net '%s', %zu places -> %zu states, "
                  "%zu deadlocks%s%s\n",
                  netfile.name.c_str(), graph.num_places,
                  graph.system.num_states(), graph.deadlocks.size(),
                  graph.one_safe ? "" : " (not 1-safe)",
                  graph.complete ? "" : " (truncated)");
      return std::move(graph.system);
    }();
    if (dot) {
      std::fputs(to_dot(system).c_str(), stdout);
      return 0;
    }

    // Automaton-given property: relative liveness / safety / satisfaction
    // against a Büchi automaton file (over the same action names).
    if (!property_path.empty()) {
      const Buchi behaviors = limit_of_prefix_closed(system);
      const Nfa raw = parse_system(read_file(property_path));
      const Buchi property =
          Buchi::from_structure(remap_alphabet(raw, system.alphabet()));
      if (mode == "rl") {
        const auto res =
            relative_liveness(behaviors, property,
                              InclusionAlgorithm::kAntichain,
                              /*budget=*/nullptr, threads);
        std::printf("relative liveness: %s\n", res.holds ? "HOLDS" : "FAILS");
        if (res.violating_prefix) {
          std::printf("doomed prefix: %s\n",
                      system.alphabet()->format(*res.violating_prefix).c_str());
          if (explain) {
            std::fputs(explain_word(system, *res.violating_prefix).c_str(),
                       stdout);
          }
        }
        int code = res.holds ? 0 : 1;
        if (certify) {
          code = report_certificate(cert::validate(res, behaviors, property),
                                    code);
        }
        return code;
      }
      if (mode == "rs") {
        const auto res = relative_safety(behaviors, property);
        std::printf("relative safety: %s\n", res.holds ? "HOLDS" : "FAILS");
        if (res.counterexample) {
          print_lasso("counterexample", *res.counterexample,
                      system.alphabet());
          if (explain) {
            std::fputs(explain_lasso(system, res.counterexample->prefix,
                                     res.counterexample->period)
                           .c_str(),
                       stdout);
          }
        }
        int code = res.holds ? 0 : 1;
        if (certify) {
          code = report_certificate(cert::validate(res, behaviors, property),
                                    code);
        }
        return code;
      }
      if (mode == "sat") {
        const auto res = satisfies(behaviors, property);
        std::printf("satisfaction: %s\n", res.holds ? "HOLDS" : "FAILS");
        if (res.counterexample) {
          print_lasso("violating behavior", *res.counterexample,
                      system.alphabet());
          if (explain) {
            std::fputs(explain_lasso(system, res.counterexample->prefix,
                                     res.counterexample->period)
                           .c_str(),
                       stdout);
          }
        }
        int code = res.holds ? 0 : 1;
        if (certify) {
          code = report_certificate(cert::validate(res, behaviors, property),
                                    code);
        }
        return code;
      }
      return usage();
    }

    if (formula_text.empty()) return usage();
    const Formula formula = parse_ltl(formula_text);

    if (!hom_path.empty() || net_hom) {
      if (net_hom && netfile.hidden.empty()) {
        std::fprintf(stderr,
                     "error: --net-hom needs a net with a hide annotation\n");
        return 2;
      }
      // Theorems 8.2/8.3 need h(L) free of maximal words; a deadlocked
      // unfolding violates that, so #-extend it before the pipeline (the
      // hidden labels and formula atoms are unaffected by the pad letter).
      Nfa pipeline_system = system;
      if (net_hom && has_maximal_words(system)) {
        pipeline_system = extend_maximal_words(system);
        std::printf("deadlocks #-extended for the abstraction pipeline\n");
      }
      const Homomorphism h =
          net_hom ? petri::derive_abstraction(pipeline_system.alphabet(),
                                              netfile.hidden)
                  : parse_homomorphism(read_file(hom_path),
                                       pipeline_system.alphabet());
      const AbstractionVerdict verdict =
          verify_via_abstraction(pipeline_system, h, to_pnf(formula));
      std::printf("abstract states: %zu (concrete: %zu)\n",
                  verdict.abstract_states, verdict.concrete_states);
      std::printf("abstract relative liveness: %s\n",
                  verdict.abstract_holds ? "holds" : "fails");
      std::printf("homomorphism simple: %s\n",
                  !verdict.simplicity_checked
                      ? "not decided (abstract check failed; Theorem 8.3 "
                        "needs no simplicity)"
                      : verdict.simplicity.simple ? "yes" : "no");
      std::printf("hidden divergence: %s\n",
                  verdict.hidden_divergence ? "yes" : "no");
      if (verdict.image_has_maximal_words) {
        std::printf("warning: h(L) has maximal words; Theorems 8.2/8.3 side "
                    "condition violated\n");
      }
      if (verdict.concrete_holds) {
        std::printf("conclusion: concrete relative liveness %s\n",
                    *verdict.concrete_holds ? "HOLDS" : "FAILS");
        return *verdict.concrete_holds ? 0 : 1;
      }
      if (!verdict.abstract_holds && verdict.hidden_divergence) {
        std::printf("conclusion: none (abstract failure, but the system can "
                    "diverge on hidden letters)\n");
      } else {
        std::printf("conclusion: none (certification failed)\n");
      }
      return 3;
    }

    const Buchi behaviors = limit_of_prefix_closed(system);
    const Labeling lambda = Labeling::canonical(system.alphabet());

    if (mode == "rl") {
      const auto res =
          relative_liveness(behaviors, formula, lambda,
                            InclusionAlgorithm::kAntichain,
                            /*budget=*/nullptr, threads);
      std::printf("relative liveness: %s\n", res.holds ? "HOLDS" : "FAILS");
      if (res.violating_prefix) {
        std::printf("doomed prefix: %s\n",
                    system.alphabet()->format(*res.violating_prefix).c_str());
        if (explain) {
          std::fputs(explain_word(system, *res.violating_prefix).c_str(),
                     stdout);
        }
      }
      int code = res.holds ? 0 : 1;
      if (certify) {
        code = report_certificate(
            cert::validate(res, behaviors, formula, lambda), code);
      }
      return code;
    }
    if (mode == "rs") {
      const auto res = relative_safety(behaviors, formula, lambda);
      std::printf("relative safety: %s\n", res.holds ? "HOLDS" : "FAILS");
      if (res.counterexample) {
        print_lasso("counterexample", *res.counterexample, system.alphabet());
        if (explain) {
          std::fputs(explain_lasso(system, res.counterexample->prefix,
                                   res.counterexample->period)
                         .c_str(),
                     stdout);
        }
      }
      int code = res.holds ? 0 : 1;
      if (certify) {
        code = report_certificate(
            cert::validate(res, behaviors, formula, lambda), code);
      }
      return code;
    }
    if (mode == "sat") {
      const auto res = satisfies(behaviors, formula, lambda);
      std::printf("satisfaction: %s\n", res.holds ? "HOLDS" : "FAILS");
      if (res.counterexample) {
        print_lasso("violating behavior", *res.counterexample,
                    system.alphabet());
        if (explain) {
          std::fputs(explain_lasso(system, res.counterexample->prefix,
                                   res.counterexample->period)
                         .c_str(),
                     stdout);
        }
      }
      int code = res.holds ? 0 : 1;
      if (certify) {
        code = report_certificate(
            cert::validate(res, behaviors, formula, lambda), code);
      }
      return code;
    }
    if (mode == "fair" || mode == "fairweak") {
      const FairnessKind kind = (mode == "fair")
                                    ? FairnessKind::kStrongTransition
                                    : FairnessKind::kWeakTransition;
      const auto res =
          check_fair_satisfaction(behaviors, formula, lambda, kind);
      std::printf("all %s fair runs satisfy: %s\n",
                  mode == "fair" ? "strongly" : "weakly",
                  res.all_fair_runs_satisfy ? "YES" : "NO");
      if (res.counterexample) {
        print_lasso("fair violating run", *res.counterexample,
                    system.alphabet());
      }
      return res.all_fair_runs_satisfy ? 0 : 1;
    }
    if (mode == "doom" && trace_text.empty()) {
      // No trace: search for the globally shortest doomed prefix.
      DoomMonitor monitor(behaviors, formula, lambda);
      const auto doom = monitor.shortest_doomed_prefix();
      if (!doom) {
        std::printf("no doomed prefix exists: the property is a relative "
                    "liveness property\n");
        return 0;
      }
      std::printf("shortest doomed prefix (%zu steps): %s\n", doom->size(),
                  system.alphabet()->format(*doom).c_str());
      if (explain) {
        std::fputs(explain_word(system, *doom).c_str(), stdout);
      }
      return 1;
    }
    if (mode == "doom") {
      DoomMonitor monitor(behaviors, formula, lambda);
      // Parse the whitespace-separated trace against the system alphabet.
      Word trace;
      std::string token;
      for (const char c : trace_text + " ") {
        if (std::isspace(static_cast<unsigned char>(c))) {
          if (!token.empty()) {
            if (!system.alphabet()->contains(token)) {
              std::fprintf(stderr, "error: unknown action '%s'\n",
                           token.c_str());
              return 2;
            }
            trace.push_back(system.alphabet()->id(token));
            token.clear();
          }
        } else {
          token += c;
        }
      }
      std::size_t first_doom = 0;
      const MonitorVerdict verdict = monitor.run(trace, &first_doom);
      switch (verdict) {
        case MonitorVerdict::kSatisfiable:
          std::printf("trace ok: the property is still realizable\n");
          return 0;
        case MonitorVerdict::kDoomed:
          std::printf("DOOMED at step %zu (action '%s'): no continuation "
                      "can satisfy the property\n",
                      first_doom,
                      system.alphabet()->name(trace[first_doom]).c_str());
          return 1;
        case MonitorVerdict::kLeftSystem:
          std::printf("trace left the system at step %zu\n", first_doom);
          return 1;
      }
    }
    if (mode == "monitor") {
      // Offline replay through the compiled streaming monitor — the same
      // kernel `rlvd --serve` steps per session, exercised from a file.
      if (trace_text.empty() && trace_file.empty()) {
        std::fprintf(stderr, "error: --check monitor needs --trace or "
                             "--trace-file\n");
        return 2;
      }
      if (!trace_file.empty()) trace_text = read_file(trace_file);
      const monitor::MonitorAutomaton aut(behaviors, formula, lambda,
                                          certify);
      Word trace;
      std::string token;
      for (const char c : trace_text + " ") {
        if (std::isspace(static_cast<unsigned char>(c))) {
          if (!token.empty()) {
            if (!system.alphabet()->contains(token)) {
              std::fprintf(stderr, "error: unknown action '%s'\n",
                           token.c_str());
              return 2;
            }
            trace.push_back(system.alphabet()->id(token));
            token.clear();
          }
        } else {
          token += c;
        }
      }
      std::uint32_t state = aut.initial();
      MonitorVerdict verdict = aut.verdict(state);
      std::optional<std::size_t> transition;
      for (std::size_t i = 0; i < trace.size(); ++i) {
        state = aut.step(state, trace[i]);
        const MonitorVerdict after = aut.verdict(state);
        if (verdict == MonitorVerdict::kSatisfiable &&
            after != MonitorVerdict::kSatisfiable) {
          transition = i;
        }
        verdict = after;
        std::printf("  %3zu %-12s -> %s\n", i,
                    system.alphabet()->name(trace[i]).c_str(),
                    std::string(monitor::verdict_name(after)).c_str());
      }
      if (verdict == MonitorVerdict::kSatisfiable) {
        std::printf("trace ok: the property is still realizable after %zu "
                    "events\n", trace.size());
        return 0;
      }
      if (transition && aut.verdict(state) == MonitorVerdict::kDoomed) {
        const Word witness = aut.witness(state);
        std::printf("DOOMED at step %zu; canonical witness for this state: "
                    "%s\n", *transition,
                    system.alphabet()->format(witness).c_str());
        if (certify) {
          const Buchi property_buchi = translate_ltl(formula, lambda);
          const cert::Validation validation =
              cert::check_doomed_prefix(witness, behaviors, property_buchi);
          std::printf("certificate: %s\n",
                      validation.valid && validation.checked ? "VALID"
                                                             : "INVALID");
          if (!validation.valid) {
            std::fprintf(stderr, "error: %s\n", validation.reason.c_str());
            return 2;
          }
        }
      } else if (transition) {
        std::printf("trace left the system at step %zu\n", *transition);
      }
      return 1;
    }
    if (mode == "synth") {
      const auto rl = relative_liveness(behaviors, formula, lambda);
      if (!rl.holds) {
        std::printf("not a relative liveness property; Theorem 5.1 does not "
                    "apply\n");
        return 1;
      }
      const FairImplementation impl =
          synthesize_fair_implementation(behaviors, formula, lambda);
      std::printf("# synthesized implementation (%zu states); all strongly "
                  "fair runs satisfy the property\n",
                  impl.system.num_states());
      std::fputs(serialize_system(impl.system.structure()).c_str(), stdout);
      return 0;
    }
    return usage();
  } catch (const ResourceExhausted& e) {
    // Distinct, machine-checkable outcome: the budget tripped, the answer
    // is "don't know", never a wrong boolean.
    std::printf("resource_exhausted in stage %s (%s)\n",
                std::string(stage_name(e.stage())).c_str(),
                e.kind() == ResourceExhausted::Kind::kDeadline
                    ? "deadline"
                    : "state cap");
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

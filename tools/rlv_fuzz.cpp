// rlv_fuzz — differential fuzz harness for the decision kernels.
//
// Drives rlv::gen random transition systems and PLTL formulas through every
// kernel configuration and cross-checks:
//
//   * kernel vs oracle   — relative liveness / relative safety /
//                          satisfaction against the brute-force
//                          explicit-product decider (rlv/cert/oracle.hpp);
//   * subset vs antichain— both inclusion algorithms on the Lemma 4.3 check;
//   * sequential vs parallel — the sharded inclusion search must agree with
//                          the sequential one (and its schedule-dependent
//                          witness must certify);
//   * Thm 4.7 identity   — satisfies ⟺ relative liveness ∧ relative safety;
//   * certificates       — every negative verdict's witness is re-checked
//                          with the independent validator
//                          (rlv/cert/certificate.hpp).
//
// Any mismatch prints a self-contained repro (seed, instance number, system
// text, formula) and exits 1. Deterministic for a fixed seed.
//
// Options:
//   --seed N       base seed (default 1)
//   --instances N  number of random instances (default 1000)
//   --states N     max system states (default 6, min 2)
//   --alphabet N   max alphabet size (default 3, min 2)
//   --depth N      max formula operator depth (default 3)
//   --threads N    worker count for the parallel inclusion leg (default 3)
//   --verbose      print a line per instance
//
// Exit status: 0 = all instances agree, 1 = mismatch found, 2 = bad usage.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "rlv/cert/certificate.hpp"
#include "rlv/cert/oracle.hpp"
#include "rlv/core/preservation.hpp"
#include "rlv/core/relative.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/gen/random.hpp"
#include "rlv/hom/image.hpp"
#include "rlv/hom/simplicity.hpp"
#include "rlv/io/format.hpp"
#include "rlv/ltl/pnf.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/petri/format.hpp"
#include "rlv/petri/reachability.hpp"
#include "rlv/petri/scenario.hpp"
#include "rlv/util/budget.hpp"
#include "rlv/util/rng.hpp"

namespace {

using namespace rlv;

int usage() {
  std::fprintf(stderr,
               "usage: rlv_fuzz [--petri] [--seed N] [--instances N]"
               " [--states N] [--alphabet N] [--depth N] [--threads N]"
               " [--verbose]\n");
  return 2;
}

struct Repro {
  std::uint64_t seed;
  std::size_t instance;
  const Nfa* system;
  std::string formula;
};

void print_repro(const Repro& r, const std::string& what) {
  std::fprintf(stderr, "rlv_fuzz: MISMATCH at instance %zu (seed %llu): %s\n",
               r.instance, static_cast<unsigned long long>(r.seed),
               what.c_str());
  std::fprintf(stderr, "formula: %s\nsystem:\n%s", r.formula.c_str(),
               serialize_system(*r.system).c_str());
}

// ---------------------------------------------------------------------------
// --petri: differential fuzzing over unfolded 1-safe net scenarios.
//
// Per instance: draw a scenario (canonical family or random safe net),
// unfold it, and cross-check (a) the textual format round-trip, (b) every
// kernel configuration against the brute-force oracle on the unfolded
// behavior automaton plus the Thm 4.7 identity and certificates, and
// (c) the preservation identities of Thm 8.2 / Cor 8.4 / Thm 8.3 on the
// abstraction derived from the scenario's hide annotation — with the
// concrete transferred check itself cross-checked against the oracle on
// small unfoldings.

/// The acceptance gate for budget-governed unfolding: philosophers(6) must
/// unfold inside 5 s / 200k states, and a tight state cap must surface as
/// ResourceExhausted in stage petri_unfold — never a crash or OOM.
int petri_budget_probe() {
  const PetriNet net = petri::philosophers_net(6).net;
  Budget generous;
  generous.set_deadline_in(std::chrono::milliseconds(5000));
  generous.set_max_states(200000);
  std::size_t states = 0;
  try {
    const ReachabilityGraph graph =
        build_reachability_graph(net, {}, &generous);
    if (!graph.complete) {
      std::fprintf(stderr, "rlv_fuzz: philosophers(6) unfold truncated\n");
      return 1;
    }
    states = graph.system.num_states();
  } catch (const ResourceExhausted& e) {
    std::fprintf(stderr,
                 "rlv_fuzz: philosophers(6) blew the 5s/200k budget: %s\n",
                 e.what());
    return 1;
  }
  Budget tight;
  tight.set_max_states(states / 2);
  try {
    (void)build_reachability_graph(net, {}, &tight);
    std::fprintf(stderr,
                 "rlv_fuzz: tight unfold budget did not trip at %zu states\n",
                 states / 2);
    return 1;
  } catch (const ResourceExhausted& e) {
    if (e.stage() != Stage::kPetriUnfold) {
      std::fprintf(stderr, "rlv_fuzz: budget tripped in stage %s, expected "
                           "petri_unfold\n",
                   std::string(stage_name(e.stage())).c_str());
      return 1;
    }
  }
  std::printf(
      "rlv_fuzz --petri: philosophers(6) unfolds to %zu states within "
      "5s/200k; tight cap reports resource_exhausted in petri_unfold\n",
      states);
  return 0;
}

petri::NetFile figure1_scenario() {
  petri::NetFile file;
  file.name = "figure1";
  file.net = figure1_net();
  file.hidden = {"lock", "free", "yes", "no"};
  return file;
}

int run_petri_fuzz(std::uint64_t seed, std::size_t instances,
                   std::size_t threads, bool verbose) {
  if (const int rc = petri_budget_probe(); rc != 0) return rc;

  Rng rng(seed);
  std::size_t oracle_checked = 0;
  std::size_t preservation_checked = 0;
  std::size_t preservation_oracle = 0;
  std::size_t simple_count = 0;
  std::size_t divergent_count = 0;
  std::size_t certificates = 0;

  for (std::size_t instance = 0; instance < instances; ++instance) {
    petri::NetFile file;
    switch (rng.next_below(6)) {
      case 0:
        file = petri::philosophers_net(2);
        break;
      case 1:
        file = petri::bounded_buffer_net(1 + rng.next_below(4));
        break;
      case 2:
        file = petri::ring_workflow_net(2 + rng.next_below(3));
        break;
      case 3:
        file = petri::flight_workflow_net();
        break;
      case 4:
        file = figure1_scenario();
        break;
      default:
        file = random_safe_net(rng, 3, 4);
        break;
    }

    ReachabilityOptions options;
    options.max_states = 4096;
    const ReachabilityGraph graph = build_reachability_graph(file.net, options);
    const AlphabetRef sigma = graph.system.alphabet();

    // Formula over a couple of the net's labels.
    std::vector<std::string> atoms;
    for (Symbol s = 0; s < sigma->size(); ++s) atoms.push_back(sigma->name(s));
    const Formula formula = random_formula(rng, atoms, 2);
    const Labeling lambda = Labeling::canonical(sigma);
    const Buchi behaviors = limit_of_prefix_closed(graph.system);

    const Repro repro{seed, instance, &graph.system, formula.to_string()};
    const auto bail = [&](const std::string& what) {
      print_repro(repro, what);
      std::fprintf(stderr, "net (%s):\n%s", file.name.c_str(),
                   petri::serialize_net(file).c_str());
      return 1;
    };

    try {
      if (!graph.complete) return bail("scenario unfold truncated at 4096");

      // Format round-trip: parse(serialize(net)) unfolds identically.
      const petri::NetFile reparsed =
          petri::parse_net(petri::serialize_net(file));
      const ReachabilityGraph regraph =
          build_reachability_graph(reparsed.net, options);
      if (regraph.system.num_states() != graph.system.num_states() ||
          regraph.deadlocks.size() != graph.deadlocks.size() ||
          reparsed.hidden != file.hidden) {
        return bail("format round-trip changed the unfolding");
      }

      // Kernels: both inclusion algorithms, sequential and parallel.
      const RelativeLivenessResult rl_anti = relative_liveness(
          behaviors, formula, lambda, InclusionAlgorithm::kAntichain);
      const RelativeLivenessResult rl_subset = relative_liveness(
          behaviors, formula, lambda, InclusionAlgorithm::kSubset);
      const RelativeLivenessResult rl_par =
          relative_liveness(behaviors, formula, lambda,
                            InclusionAlgorithm::kAntichain,
                            /*budget=*/nullptr, threads);
      const RelativeSafetyResult rs =
          relative_safety(behaviors, formula, lambda);
      const SatisfactionResult sat = satisfies(behaviors, formula, lambda);

      if (rl_anti.holds != rl_subset.holds) {
        return bail("rl: antichain and subset disagree");
      }
      if (rl_anti.holds != rl_par.holds) {
        return bail("rl: sequential and parallel disagree");
      }
      if (sat.holds != (rl_anti.holds && rs.holds)) {
        return bail("Thm 4.7 identity violated: sat != (rl && rs)");
      }

      // Brute-force oracle on small unfoldings (it is exponential).
      if (graph.system.num_states() <= 24) {
        const bool orl =
            cert::oracle_relative_liveness(behaviors, formula, lambda);
        const bool ors =
            cert::oracle_relative_safety(behaviors, formula, lambda);
        const bool osat = cert::oracle_satisfies(behaviors, formula, lambda);
        if (rl_anti.holds != orl) return bail("rl: kernel vs oracle");
        if (rs.holds != ors) return bail("rs: kernel vs oracle");
        if (sat.holds != osat) return bail("sat: kernel vs oracle");
        ++oracle_checked;
      }

      // Certificates on negative verdicts.
      for (const cert::Validation& v :
           {cert::validate(rl_anti, behaviors, formula, lambda),
            cert::validate(rs, behaviors, formula, lambda),
            cert::validate(sat, behaviors, formula, lambda)}) {
        if (v.checked) ++certificates;
        if (!v.valid) return bail("certificate: " + v.reason);
      }

      // Preservation identities on the derived abstraction.
      if (!file.hidden.empty()) {
        // Thm 8.2/8.3 talk about h(L) without maximal words; deadlocking
        // scenarios get the #-extension first (pad stays visible).
        const Nfa ext = has_maximal_words(graph.system)
                            ? extend_maximal_words(graph.system)
                            : graph.system;
        const Homomorphism h =
            petri::derive_abstraction(ext.alphabet(), file.hidden);
        const Nfa abstracted = image_nfa(ext, h);
        if (abstracted.num_states() != 0 && h.target()->size() != 0 &&
            !has_maximal_words(abstracted)) {
          std::vector<std::string> kept;
          for (Symbol s = 0; s < h.target()->size(); ++s) {
            kept.push_back(h.target()->name(s));
          }
          const Formula eta = to_pnf(random_formula(rng, kept, 2));
          const AbstractionVerdict verdict =
              verify_via_abstraction(ext, h, eta);
          const bool concrete_rl = concrete_relative_liveness(ext, h, eta);
          // The pipeline skips the simplicity decision when the abstract
          // check fails (Thm 8.3 needs none); recompute it here so the
          // Cor 8.4 equality leg keeps full coverage.
          const bool simple = verdict.simplicity_checked
                                  ? verdict.simplicity.simple
                                  : check_simplicity(ext, h).simple;
          if (simple) ++simple_count;
          if (verdict.hidden_divergence) ++divergent_count;
          // Thm 8.2 (positive transfer): sound even under divergence.
          if (simple && !verdict.image_has_maximal_words &&
              verdict.abstract_holds && !concrete_rl) {
            return bail("Thm 8.2 violated on " + eta.to_string() +
                        ": simple h, abstract holds, concrete fails");
          }
          // Thm 8.3 / Cor 8.4 need divergence-freedom (an all-ε tail can
          // rescue R̄(η) concretely after the abstraction refutes η).
          if (!verdict.hidden_divergence) {
            if (simple && verdict.abstract_holds != concrete_rl) {
              return bail("Cor 8.4 violated on " + eta.to_string() +
                          ": simple h but abstract != concrete");
            }
            if (concrete_rl && !verdict.abstract_holds) {
              return bail("Thm 8.3 violated on " + eta.to_string() +
                          ": concrete holds but abstract fails");
            }
          }
          if (verdict.concrete_holds.has_value() &&
              *verdict.concrete_holds != concrete_rl) {
            return bail("pipeline conclusion disagrees with direct concrete "
                        "check on " +
                        eta.to_string());
          }
          ++preservation_checked;

          // Oracle cross-check of the transferred concrete verdict.
          if (ext.num_states() <= 24) {
            const bool orl = cert::oracle_relative_liveness(
                limit_of_prefix_closed(ext), verdict.transformed,
                hom_labeling(h));
            if (orl != concrete_rl) {
              return bail("preservation: concrete kernel vs oracle on R(" +
                          eta.to_string() + ")");
            }
            ++preservation_oracle;
          }
        }
      }
    } catch (const std::exception& e) {
      return bail(std::string("exception: ") + e.what());
    }

    if (verbose) {
      std::printf("instance %zu ok: %s, %zu states%s\n", instance,
                  file.name.c_str(),
                  static_cast<std::size_t>(graph.system.num_states()),
                  graph.one_safe ? "" : " (count rows)");
    }
  }

  std::printf(
      "rlv_fuzz --petri: %zu net instances ok (seed %llu): %zu oracle-checked,"
      " %zu preservation identities (%zu simple, %zu divergent,"
      " %zu oracle-confirmed), %zu certificates validated, 0 mismatches\n",
      instances, static_cast<unsigned long long>(seed), oracle_checked,
      preservation_checked, simple_count, divergent_count, preservation_oracle,
      certificates);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::size_t instances = 1000;
  std::size_t max_states = 6;
  std::size_t max_alphabet = 3;
  std::size_t max_depth = 3;
  std::size_t threads = 3;
  bool verbose = false;
  bool petri = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_num = [&](std::size_t min_value) -> long long {
      if (i + 1 >= argc) return -1;
      const long long n = std::atoll(argv[++i]);
      return n >= static_cast<long long>(min_value) ? n : -1;
    };
    if (arg == "--seed") {
      const long long n = next_num(0);
      if (n < 0) return usage();
      seed = static_cast<std::uint64_t>(n);
    } else if (arg == "--instances") {
      const long long n = next_num(1);
      if (n < 0) return usage();
      instances = static_cast<std::size_t>(n);
    } else if (arg == "--states") {
      const long long n = next_num(2);
      if (n < 0) return usage();
      max_states = static_cast<std::size_t>(n);
    } else if (arg == "--alphabet") {
      const long long n = next_num(2);
      if (n < 0) return usage();
      max_alphabet = static_cast<std::size_t>(n);
    } else if (arg == "--depth") {
      const long long n = next_num(1);
      if (n < 0) return usage();
      max_depth = static_cast<std::size_t>(n);
    } else if (arg == "--threads") {
      const long long n = next_num(1);
      if (n < 0) return usage();
      threads = static_cast<std::size_t>(n);
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--petri") {
      petri = true;
    } else {
      return usage();
    }
  }

  if (petri) return run_petri_fuzz(seed, instances, threads, verbose);

  Rng rng(seed);
  std::size_t certificates = 0;
  std::size_t negatives = 0;

  for (std::size_t instance = 0; instance < instances; ++instance) {
    const std::size_t sigma_size = 2 + rng.next_below(max_alphabet - 1);
    const AlphabetRef sigma = random_alphabet(sigma_size);
    const std::size_t states = 2 + rng.next_below(max_states - 1);
    const Nfa system = random_transition_system(rng, states, sigma);
    std::vector<std::string> atoms;
    for (Symbol s = 0; s < sigma->size(); ++s) atoms.push_back(sigma->name(s));
    const Formula formula = random_formula(rng, atoms, max_depth);
    const Labeling lambda = Labeling::canonical(sigma);
    const Buchi behaviors = limit_of_prefix_closed(system);

    const Repro repro{seed, instance, &system, formula.to_string()};
    const auto bail = [&](const std::string& what) {
      print_repro(repro, what);
      return 1;
    };

    try {
      // Kernels: both inclusion algorithms, sequential and parallel.
      const RelativeLivenessResult rl_anti = relative_liveness(
          behaviors, formula, lambda, InclusionAlgorithm::kAntichain);
      const RelativeLivenessResult rl_subset = relative_liveness(
          behaviors, formula, lambda, InclusionAlgorithm::kSubset);
      const RelativeLivenessResult rl_par =
          relative_liveness(behaviors, formula, lambda,
                            InclusionAlgorithm::kAntichain,
                            /*budget=*/nullptr, threads);
      const RelativeSafetyResult rs =
          relative_safety(behaviors, formula, lambda);
      const SatisfactionResult sat = satisfies(behaviors, formula, lambda);

      // Brute-force oracle.
      const bool orl = cert::oracle_relative_liveness(behaviors, formula,
                                                      lambda);
      const bool ors = cert::oracle_relative_safety(behaviors, formula,
                                                    lambda);
      const bool osat = cert::oracle_satisfies(behaviors, formula, lambda);

      if (rl_anti.holds != rl_subset.holds) {
        return bail("rl: antichain and subset disagree");
      }
      if (rl_anti.holds != rl_par.holds) {
        return bail("rl: sequential and parallel disagree");
      }
      if (rl_anti.holds != orl) {
        return bail(std::string("rl: kernel says ") +
                    (rl_anti.holds ? "holds" : "fails") + ", oracle says " +
                    (orl ? "holds" : "fails"));
      }
      if (rs.holds != ors) {
        return bail(std::string("rs: kernel says ") +
                    (rs.holds ? "holds" : "fails") + ", oracle says " +
                    (ors ? "holds" : "fails"));
      }
      if (sat.holds != osat) {
        return bail(std::string("sat: kernel says ") +
                    (sat.holds ? "holds" : "fails") + ", oracle says " +
                    (osat ? "holds" : "fails"));
      }
      // Theorem 4.7: satisfaction ⟺ relative liveness ∧ relative safety.
      if (sat.holds != (rl_anti.holds && rs.holds)) {
        return bail("Thm 4.7 identity violated: sat != (rl && rs)");
      }

      // Certificates: every negative verdict's witness must validate.
      const RelativeLivenessResult* rls[] = {&rl_anti, &rl_subset, &rl_par};
      const char* rl_names[] = {"rl/antichain", "rl/subset", "rl/parallel"};
      for (std::size_t k = 0; k < 3; ++k) {
        const cert::Validation v =
            cert::validate(*rls[k], behaviors, formula, lambda);
        if (v.checked) ++certificates;
        if (!v.valid) {
          return bail(std::string(rl_names[k]) + " certificate: " + v.reason);
        }
      }
      for (const cert::Validation& v :
           {cert::validate(rs, behaviors, formula, lambda),
            cert::validate(sat, behaviors, formula, lambda)}) {
        if (v.checked) ++certificates;
        if (!v.valid) return bail("rs/sat certificate: " + v.reason);
      }
      if (!sat.holds) ++negatives;
    } catch (const std::exception& e) {
      return bail(std::string("exception: ") + e.what());
    }

    if (verbose) {
      std::printf("instance %zu ok (%zu states, |Sigma|=%zu)\n", instance,
                  states, sigma_size);
    }
  }

  std::printf(
      "rlv_fuzz: %zu instances ok (seed %llu): %zu sat violations, "
      "%zu certificates validated, 0 mismatches\n",
      instances, static_cast<unsigned long long>(seed), negatives,
      certificates);
  return 0;
}

// rlv_fuzz — differential fuzz harness for the decision kernels.
//
// Drives rlv::gen random transition systems and PLTL formulas through every
// kernel configuration and cross-checks:
//
//   * kernel vs oracle   — relative liveness / relative safety /
//                          satisfaction against the brute-force
//                          explicit-product decider (rlv/cert/oracle.hpp);
//   * subset vs antichain— both inclusion algorithms on the Lemma 4.3 check;
//   * sequential vs parallel — the sharded inclusion search must agree with
//                          the sequential one (and its schedule-dependent
//                          witness must certify);
//   * Thm 4.7 identity   — satisfies ⟺ relative liveness ∧ relative safety;
//   * certificates       — every negative verdict's witness is re-checked
//                          with the independent validator
//                          (rlv/cert/certificate.hpp).
//
// Any mismatch prints a self-contained repro (seed, instance number, system
// text, formula) and exits 1. Deterministic for a fixed seed.
//
// Options:
//   --seed N       base seed (default 1)
//   --instances N  number of random instances (default 1000)
//   --states N     max system states (default 6, min 2)
//   --alphabet N   max alphabet size (default 3, min 2)
//   --depth N      max formula operator depth (default 3)
//   --threads N    worker count for the parallel inclusion leg (default 3)
//   --verbose      print a line per instance
//
// Exit status: 0 = all instances agree, 1 = mismatch found, 2 = bad usage.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "rlv/cert/certificate.hpp"
#include "rlv/cert/oracle.hpp"
#include "rlv/core/relative.hpp"
#include "rlv/gen/random.hpp"
#include "rlv/io/format.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/util/rng.hpp"

namespace {

using namespace rlv;

int usage() {
  std::fprintf(stderr,
               "usage: rlv_fuzz [--seed N] [--instances N] [--states N]"
               " [--alphabet N] [--depth N] [--threads N] [--verbose]\n");
  return 2;
}

struct Repro {
  std::uint64_t seed;
  std::size_t instance;
  const Nfa* system;
  std::string formula;
};

void print_repro(const Repro& r, const std::string& what) {
  std::fprintf(stderr, "rlv_fuzz: MISMATCH at instance %zu (seed %llu): %s\n",
               r.instance, static_cast<unsigned long long>(r.seed),
               what.c_str());
  std::fprintf(stderr, "formula: %s\nsystem:\n%s", r.formula.c_str(),
               serialize_system(*r.system).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::size_t instances = 1000;
  std::size_t max_states = 6;
  std::size_t max_alphabet = 3;
  std::size_t max_depth = 3;
  std::size_t threads = 3;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_num = [&](std::size_t min_value) -> long long {
      if (i + 1 >= argc) return -1;
      const long long n = std::atoll(argv[++i]);
      return n >= static_cast<long long>(min_value) ? n : -1;
    };
    if (arg == "--seed") {
      const long long n = next_num(0);
      if (n < 0) return usage();
      seed = static_cast<std::uint64_t>(n);
    } else if (arg == "--instances") {
      const long long n = next_num(1);
      if (n < 0) return usage();
      instances = static_cast<std::size_t>(n);
    } else if (arg == "--states") {
      const long long n = next_num(2);
      if (n < 0) return usage();
      max_states = static_cast<std::size_t>(n);
    } else if (arg == "--alphabet") {
      const long long n = next_num(2);
      if (n < 0) return usage();
      max_alphabet = static_cast<std::size_t>(n);
    } else if (arg == "--depth") {
      const long long n = next_num(1);
      if (n < 0) return usage();
      max_depth = static_cast<std::size_t>(n);
    } else if (arg == "--threads") {
      const long long n = next_num(1);
      if (n < 0) return usage();
      threads = static_cast<std::size_t>(n);
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      return usage();
    }
  }

  Rng rng(seed);
  std::size_t certificates = 0;
  std::size_t negatives = 0;

  for (std::size_t instance = 0; instance < instances; ++instance) {
    const std::size_t sigma_size = 2 + rng.next_below(max_alphabet - 1);
    const AlphabetRef sigma = random_alphabet(sigma_size);
    const std::size_t states = 2 + rng.next_below(max_states - 1);
    const Nfa system = random_transition_system(rng, states, sigma);
    std::vector<std::string> atoms;
    for (Symbol s = 0; s < sigma->size(); ++s) atoms.push_back(sigma->name(s));
    const Formula formula = random_formula(rng, atoms, max_depth);
    const Labeling lambda = Labeling::canonical(sigma);
    const Buchi behaviors = limit_of_prefix_closed(system);

    const Repro repro{seed, instance, &system, formula.to_string()};
    const auto bail = [&](const std::string& what) {
      print_repro(repro, what);
      return 1;
    };

    try {
      // Kernels: both inclusion algorithms, sequential and parallel.
      const RelativeLivenessResult rl_anti = relative_liveness(
          behaviors, formula, lambda, InclusionAlgorithm::kAntichain);
      const RelativeLivenessResult rl_subset = relative_liveness(
          behaviors, formula, lambda, InclusionAlgorithm::kSubset);
      const RelativeLivenessResult rl_par =
          relative_liveness(behaviors, formula, lambda,
                            InclusionAlgorithm::kAntichain,
                            /*budget=*/nullptr, threads);
      const RelativeSafetyResult rs =
          relative_safety(behaviors, formula, lambda);
      const SatisfactionResult sat = satisfies(behaviors, formula, lambda);

      // Brute-force oracle.
      const bool orl = cert::oracle_relative_liveness(behaviors, formula,
                                                      lambda);
      const bool ors = cert::oracle_relative_safety(behaviors, formula,
                                                    lambda);
      const bool osat = cert::oracle_satisfies(behaviors, formula, lambda);

      if (rl_anti.holds != rl_subset.holds) {
        return bail("rl: antichain and subset disagree");
      }
      if (rl_anti.holds != rl_par.holds) {
        return bail("rl: sequential and parallel disagree");
      }
      if (rl_anti.holds != orl) {
        return bail(std::string("rl: kernel says ") +
                    (rl_anti.holds ? "holds" : "fails") + ", oracle says " +
                    (orl ? "holds" : "fails"));
      }
      if (rs.holds != ors) {
        return bail(std::string("rs: kernel says ") +
                    (rs.holds ? "holds" : "fails") + ", oracle says " +
                    (ors ? "holds" : "fails"));
      }
      if (sat.holds != osat) {
        return bail(std::string("sat: kernel says ") +
                    (sat.holds ? "holds" : "fails") + ", oracle says " +
                    (osat ? "holds" : "fails"));
      }
      // Theorem 4.7: satisfaction ⟺ relative liveness ∧ relative safety.
      if (sat.holds != (rl_anti.holds && rs.holds)) {
        return bail("Thm 4.7 identity violated: sat != (rl && rs)");
      }

      // Certificates: every negative verdict's witness must validate.
      const RelativeLivenessResult* rls[] = {&rl_anti, &rl_subset, &rl_par};
      const char* rl_names[] = {"rl/antichain", "rl/subset", "rl/parallel"};
      for (std::size_t k = 0; k < 3; ++k) {
        const cert::Validation v =
            cert::validate(*rls[k], behaviors, formula, lambda);
        if (v.checked) ++certificates;
        if (!v.valid) {
          return bail(std::string(rl_names[k]) + " certificate: " + v.reason);
        }
      }
      for (const cert::Validation& v :
           {cert::validate(rs, behaviors, formula, lambda),
            cert::validate(sat, behaviors, formula, lambda)}) {
        if (v.checked) ++certificates;
        if (!v.valid) return bail("rs/sat certificate: " + v.reason);
      }
      if (!sat.holds) ++negatives;
    } catch (const std::exception& e) {
      return bail(std::string("exception: ") + e.what());
    }

    if (verbose) {
      std::printf("instance %zu ok (%zu states, |Sigma|=%zu)\n", instance,
                  states, sigma_size);
    }
  }

  std::printf(
      "rlv_fuzz: %zu instances ok (seed %llu): %zu sat violations, "
      "%zu certificates validated, 0 mismatches\n",
      instances, static_cast<unsigned long long>(seed), negatives,
      certificates);
  return 0;
}

// rlv_sim — execute a transition system with the strongly fair scheduler
// while the doom monitor watches the trace.
//
// Usage:
//   rlv_sim <system-file> --ltl "<formula>" [--steps N] [--seed K]
//
// Prints the fair execution and the monitor's verdict stream; summarizes
// how often the property's "goal atoms" occurred. Exit: 0 if the run ends
// kSatisfiable, 1 otherwise.

#include <cstdio>
#include <string>

#include "rlv/core/monitor.hpp"
#include "rlv/fair/simulate.hpp"
#include "rlv/io/format.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/omega/limit.hpp"

namespace {

using namespace rlv;

int usage() {
  std::fprintf(stderr,
               "usage: rlv_sim <system-file> --ltl \"<formula>\" "
               "[--steps N] [--seed K]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string formula_text;
  SimulationOptions options;
  options.steps = 40;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--ltl" && i + 1 < argc) {
      formula_text = argv[++i];
    } else if (arg == "--steps" && i + 1 < argc) {
      options.steps = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return usage();
    }
  }
  if (formula_text.empty()) return usage();

  try {
    const Nfa system = parse_system(read_file(argv[1]));
    const Formula formula = parse_ltl(formula_text);
    const Buchi behaviors = limit_of_prefix_closed(system);
    const Labeling lambda = Labeling::canonical(system.alphabet());

    DoomMonitor monitor(behaviors, formula, lambda);
    const Word run = simulate_fair_run(system, options);

    std::printf("# fair execution of %s under watch of: %s\n", argv[1],
                formula.to_string().c_str());
    for (std::size_t i = 0; i < run.size(); ++i) {
      const MonitorVerdict verdict = monitor.step(run[i]);
      const char* tag = verdict == MonitorVerdict::kSatisfiable ? "ok"
                        : verdict == MonitorVerdict::kDoomed    ? "DOOMED"
                                                                : "left";
      std::printf("%4zu  %-16s %s\n", i, system.alphabet()->name(run[i]).c_str(),
                  tag);
      if (verdict != MonitorVerdict::kSatisfiable) break;
    }

    // Occurrence statistics for the formula's atoms.
    std::printf("\natom occurrences in the run:\n");
    for (const std::string& atom : formula.atoms()) {
      if (!system.alphabet()->contains(atom)) continue;
      const Symbol s = system.alphabet()->id(atom);
      std::size_t count = 0;
      for (const Symbol x : run) count += (x == s) ? 1 : 0;
      std::printf("  %-16s %zu\n", atom.c_str(), count);
    }
    return monitor.verdict() == MonitorVerdict::kSatisfiable ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

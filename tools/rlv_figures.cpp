// rlv_figures — regenerates every figure of the paper as GraphViz files and
// re-derives the claims the paper makes about them (the per-figure
// "evaluation" of this reproduction; see EXPERIMENTS.md).
//
//   figure1.dot   the server Petri net
//   figure2.dot   its reachability graph (behaviors of the correct server)
//   figure3.dot   the erroneous server's behaviors
//   figure4.dot   the common abstraction of both
//
// Usage: rlv_figures [output-directory]   (default ".")

#include <cstdio>
#include <fstream>
#include <string>

#include "rlv/core/relative.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/hom/image.hpp"
#include "rlv/hom/simplicity.hpp"
#include "rlv/io/format.hpp"
#include "rlv/lang/inclusion.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/translate.hpp"
#include "rlv/omega/lasso.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/petri/reachability.hpp"

namespace {

using namespace rlv;

void write(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = (argc > 1) ? argv[1] : ".";

  // Figure 1: the Petri net.
  const PetriNet net = figure1_net();
  write(dir + "/figure1.dot", to_dot(net, "figure1"));

  // Figure 2: its reachability graph.
  const ReachabilityGraph graph = build_reachability_graph(net);
  write(dir + "/figure2.dot", to_dot(graph.system, "figure2"));

  // Figure 3: the buggy variant.
  const Nfa fig3 = figure3_system();
  write(dir + "/figure3.dot", to_dot(fig3, "figure3"));

  // Figure 4: the abstraction (reduced image; same from both systems).
  const Nfa fig2 = figure2_system();
  const Homomorphism h = paper_abstraction(fig2.alphabet());
  const Nfa fig4 = reduced_image_nfa(fig2, h);
  write(dir + "/figure4.dot", to_dot(fig4, "figure4"));

  // --- Re-derive every claim the paper attaches to these figures. ---------
  std::printf("\nclaims:\n");
  const Buchi behaviors2 = limit_of_prefix_closed(fig2);
  const Labeling lambda = Labeling::canonical(fig2.alphabet());
  const Formula gf_result = parse_ltl("G F result");

  // "lock·(request·no·reject)^ω is a computation of the system that does
  // not satisfy □◇(result)" (§2).
  const Word lock = {fig2.alphabet()->id("lock")};
  const Word cycle = {fig2.alphabet()->id("request"), fig2.alphabet()->id("no"),
                      fig2.alphabet()->id("reject")};
  std::printf("  lock.(request.no.reject)^w is a behavior of Fig.2:  %s\n",
              accepts_lasso(behaviors2, lock, cycle) ? "yes" : "NO?!");
  const Buchi prop = translate_ltl(gf_result, lambda);
  std::printf("  ... and it violates G F result:                     %s\n",
              !accepts_lasso(prop, lock, cycle) ? "yes" : "NO?!");

  // "□◇(result) is a relative liveness property of Fig.2."
  std::printf("  G F result relative liveness of Fig.2:              %s\n",
              relative_liveness(behaviors2, gf_result, lambda).holds
                  ? "yes"
                  : "NO?!");

  // "not a relative liveness property of Fig.3."
  const Buchi behaviors3 = limit_of_prefix_closed(fig3);
  std::printf("  G F result relative liveness of Fig.3:              %s\n",
              !relative_liveness(behaviors3, gf_result,
                                 Labeling::canonical(fig3.alphabet()))
                       .holds
                  ? "no (as claimed)"
                  : "YES?!");

  // "Figure 4 is also obtained by abstracting from Figure 3."
  const Nfa fig4_from3 =
      reduced_image_nfa(fig3, paper_abstraction(fig3.alphabet()));
  std::printf("  Fig.3 abstracts to the same Figure 4:                %s\n",
              nfa_equivalent(remap_alphabet(fig4_from3, fig4.alphabet()), fig4)
                  ? "yes"
                  : "NO?!");

  // "the homomorphism is simple for Fig.2 but not for Fig.3."
  std::printf("  h simple on Fig.2 / Fig.3:                           %s / %s\n",
              check_simplicity(fig2, h).simple ? "yes" : "NO?!",
              !check_simplicity(fig3, paper_abstraction(fig3.alphabet()))
                       .simple
                  ? "no (as claimed)"
                  : "YES?!");
  return 0;
}

// rlv_loadgen — closed-loop load generator for `rlvd --serve`.
//
// Opens N connections, each driving M requests back-to-back (send one,
// wait for the response, send the next) over a fixed mixed workload built
// from the rlv::gen families (Figure 2/3 servers, token rings) across
// rl/rs/sat checks — the many-properties-few-systems shape the engine
// caches exist for. Reports throughput and latency percentiles as one
// JSON line on stdout:
//
//   {"loadgen":{"connections":4,"requests_per_connection":64,"total":256,
//    "errors":0,"overloaded":0,"exhausted":0,"wall_ms":812.4,
//    "throughput_rps":315.1,
//    "latency_ms":{"p50":2.90,"p95":5.81,"p99":9.22,"max":31.0}}}
//
// With --stats, a final `stats` request is issued on a fresh connection
// and the raw response (EngineStats + server counters) is printed on
// stdout — the cache-effectiveness record E25 consumes.
//
// Exit status: 0 = every response was a well-formed verdict (overload
// rejections and resource_exhausted are counted, not errors), 1 = at
// least one error/protocol failure, 2 = bad invocation or connect
// failure.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "rlv/engine/query.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/io/format.hpp"
#include "rlv/net/client.hpp"

namespace {

using namespace rlv;

int usage() {
  std::fprintf(stderr,
               "usage: rlv_loadgen --port P [--host H] [--connections N]"
               " [--requests M] [--certify] [--stats]\n");
  return 2;
}

struct WorkItem {
  Query query;
  std::string label;
};

/// The serving workload: few systems, many properties, repeated across
/// every connection — maximal cache sharing, like production traffic.
std::vector<WorkItem> build_workload(bool certify) {
  const std::string fig2 = serialize_system(figure2_system());
  const std::string fig3 = serialize_system(figure3_system());
  const std::string ring3 = serialize_system(token_ring(3));
  const std::string ring5 = serialize_system(token_ring(5));

  std::vector<WorkItem> items;
  const auto add = [&](const std::string& system, const char* formula,
                       CheckKind kind, const char* label) {
    Query query;
    query.system = system;
    query.formula = formula;
    query.kind = kind;
    query.certify = certify;
    items.push_back({std::move(query), label});
  };
  add(fig2, "G F result", CheckKind::kRelativeLiveness, "fig2");
  add(fig2, "G F result", CheckKind::kRelativeSafety, "fig2");
  add(fig2, "G F result", CheckKind::kSatisfaction, "fig2");
  add(fig2, "G(result -> !(X result))", CheckKind::kSatisfaction, "fig2");
  add(fig2, "G(request -> F (result | reject))", CheckKind::kRelativeLiveness,
      "fig2");
  add(fig3, "G F result", CheckKind::kRelativeLiveness, "fig3");
  add(fig3, "G F result", CheckKind::kRelativeSafety, "fig3");
  add(ring3, "G F pass_0", CheckKind::kRelativeLiveness, "ring3");
  add(ring3, "G F work_1", CheckKind::kRelativeLiveness, "ring3");
  add(ring5, "G F pass_0", CheckKind::kRelativeLiveness, "ring5");
  add(ring5, "G F pass_0", CheckKind::kSatisfaction, "ring5");
  add(fig2, "F G result", CheckKind::kRelativeSafety, "fig2");
  return items;
}

struct ThreadResult {
  std::vector<double> latencies_ms;
  std::uint64_t errors = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t exhausted = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::size_t connections = 4;
  std::size_t requests = 64;
  bool certify = false;
  bool want_stats = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--connections" && i + 1 < argc) {
      connections = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--requests" && i + 1 < argc) {
      requests = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--certify") {
      certify = true;
    } else if (arg == "--stats") {
      want_stats = true;
    } else {
      return usage();
    }
  }
  if (port <= 0 || port > 65535 || connections == 0 || requests == 0) {
    return usage();
  }

  const std::vector<WorkItem> workload = build_workload(certify);

  // Fail fast (exit 2) when the server is not there at all.
  try {
    net::Client probe;
    probe.connect(host, static_cast<std::uint16_t>(port));
    (void)probe.call("{\"op\":\"ping\"}");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::vector<ThreadResult> results(connections);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (std::size_t t = 0; t < connections; ++t) {
    threads.emplace_back([&, t] {
      ThreadResult& result = results[t];
      result.latencies_ms.reserve(requests);
      net::Client client;
      try {
        client.connect(host, static_cast<std::uint16_t>(port));
      } catch (const std::exception&) {
        result.errors += requests;
        return;
      }
      for (std::size_t i = 0; i < requests; ++i) {
        // Stagger the walk so concurrent connections mix the workload.
        const WorkItem& item = workload[(i + t * 7) % workload.size()];
        const std::uint64_t id = t * requests + i;
        const auto sent = std::chrono::steady_clock::now();
        try {
          const std::string line = client.call(
              net::render_query_request(item.query, id, item.label));
          const net::Response response = net::parse_response(line);
          result.latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - sent)
                  .count());
          if (response.id != id) {
            ++result.errors;
          } else if (response.overloaded) {
            ++result.overloaded;
          } else if (response.resource_exhausted) {
            ++result.exhausted;
          } else if (!response.ok) {
            ++result.errors;
          }
        } catch (const std::exception&) {
          result.errors += requests - i;
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  std::vector<double> latencies;
  std::uint64_t errors = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t exhausted = 0;
  for (ThreadResult& result : results) {
    latencies.insert(latencies.end(), result.latencies_ms.begin(),
                     result.latencies_ms.end());
    errors += result.errors;
    overloaded += result.overloaded;
    exhausted += result.exhausted;
  }
  std::sort(latencies.begin(), latencies.end());
  const std::uint64_t total = connections * requests;
  const double throughput =
      wall_ms > 0 ? static_cast<double>(latencies.size()) / (wall_ms / 1000.0)
                  : 0.0;
  std::printf(
      "{\"loadgen\":{\"connections\":%zu,\"requests_per_connection\":%zu,"
      "\"total\":%llu,\"errors\":%llu,\"overloaded\":%llu,\"exhausted\":%llu,"
      "\"wall_ms\":%.1f,\"throughput_rps\":%.1f,"
      "\"latency_ms\":{\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f,\"max\":%.3f}}}\n",
      connections, requests, static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(overloaded),
      static_cast<unsigned long long>(exhausted), wall_ms, throughput,
      percentile(latencies, 0.50), percentile(latencies, 0.95),
      percentile(latencies, 0.99),
      latencies.empty() ? 0.0 : latencies.back());

  if (want_stats) {
    try {
      net::Client client;
      client.connect(host, static_cast<std::uint16_t>(port));
      std::puts(client.call("{\"op\":\"stats\"}").c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: stats request failed: %s\n", e.what());
      return 1;
    }
  }
  return errors == 0 ? 0 : 1;
}

// rlv_loadgen — closed-loop load generator for `rlvd --serve`.
//
// Opens N connections, each driving M requests back-to-back (send one,
// wait for the response, send the next) over a fixed mixed workload built
// from the rlv::gen families (Figure 2/3 servers, token rings) across
// rl/rs/sat checks — the many-properties-few-systems shape the engine
// caches exist for. Reports throughput and latency percentiles as one
// JSON line on stdout:
//
//   {"loadgen":{"connections":4,"requests_per_connection":64,"total":256,
//    "errors":0,"overloaded":0,"exhausted":0,"wall_ms":812.4,
//    "throughput_rps":315.1,
//    "latency_ms":{"p50":2.90,"p95":5.81,"p99":9.22,"max":31.0}}}
//
// With --stats, a final `stats` request is issued on a fresh connection
// and the raw response (EngineStats + server counters) is printed on
// stdout — the cache-effectiveness record E25 consumes.
//
// With --monitor, the generator switches to the streaming-monitor
// workload (record E26): open K sessions (one connection each) on the
// Figure 2 server with `G F result`, stream M locally-precomputed
// guaranteed-live events per session in batches of B, and report
// events/s plus per-event latency percentiles (batch RTT amortized over
// its events) as {"monitor_loadgen":{...}}. A deterministic doom leg then
// opens a certified Figure 3 session, streams the canonical dooming trace
// and asserts the doomed index, the certified witness, absorbing doom,
// and double-close behavior — wire-protocol verification riding along
// with the measurement.
//
// With --petri, the query workload is rebuilt from the rlv::petri scenario
// nets: each system is the serialized reachability-graph unfolding of a
// classic 1-safe net (Figure 1 resource server, bounded buffer, token-ring
// workflow, dining philosophers) — larger and deadlock-bearing, exercising
// the engine with Petri-shaped state spaces.
//
// Exit status: 0 = every response was a well-formed verdict (overload
// rejections and resource_exhausted are counted, not errors), 1 = at
// least one error/protocol failure, 2 = bad invocation or connect
// failure.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "rlv/engine/query.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/io/format.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/monitor/automaton.hpp"
#include "rlv/net/client.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/petri/reachability.hpp"
#include "rlv/petri/scenario.hpp"

namespace {

using namespace rlv;

int usage() {
  std::fprintf(stderr,
               "usage: rlv_loadgen --port P [--host H] [--connections N]"
               " [--requests M] [--sweep-connections N1,N2,...]"
               " [--certify] [--stats] [--petri]\n"
               "       rlv_loadgen --port P --monitor [--sessions K]"
               " [--events M] [--batch B] [--stats]\n");
  return 2;
}

struct WorkItem {
  Query query;
  std::string label;
};

/// The serving workload: few systems, many properties, repeated across
/// every connection — maximal cache sharing, like production traffic.
std::vector<WorkItem> build_workload(bool certify) {
  const std::string fig2 = serialize_system(figure2_system());
  const std::string fig3 = serialize_system(figure3_system());
  const std::string ring3 = serialize_system(token_ring(3));
  const std::string ring5 = serialize_system(token_ring(5));

  std::vector<WorkItem> items;
  const auto add = [&](const std::string& system, const char* formula,
                       CheckKind kind, const char* label) {
    Query query;
    query.system = system;
    query.formula = formula;
    query.kind = kind;
    query.certify = certify;
    items.push_back({std::move(query), label});
  };
  add(fig2, "G F result", CheckKind::kRelativeLiveness, "fig2");
  add(fig2, "G F result", CheckKind::kRelativeSafety, "fig2");
  add(fig2, "G F result", CheckKind::kSatisfaction, "fig2");
  add(fig2, "G(result -> !(X result))", CheckKind::kSatisfaction, "fig2");
  add(fig2, "G(request -> F (result | reject))", CheckKind::kRelativeLiveness,
      "fig2");
  add(fig3, "G F result", CheckKind::kRelativeLiveness, "fig3");
  add(fig3, "G F result", CheckKind::kRelativeSafety, "fig3");
  add(ring3, "G F pass_0", CheckKind::kRelativeLiveness, "ring3");
  add(ring3, "G F work_1", CheckKind::kRelativeLiveness, "ring3");
  add(ring5, "G F pass_0", CheckKind::kRelativeLiveness, "ring5");
  add(ring5, "G F pass_0", CheckKind::kSatisfaction, "ring5");
  add(fig2, "F G result", CheckKind::kRelativeSafety, "fig2");
  return items;
}

/// The --petri workload: the systems are reachability-graph unfoldings of
/// the rlv::petri scenario nets instead of the hand-drawn figures — larger,
/// deadlock-bearing state spaces (philosophers(3) can wedge) with the same
/// few-systems/many-properties shape, so the engine's system cache is
/// stressed with Petri-sized inputs. Unfolding happens client-side; the
/// server sees ordinary serialized transition systems.
std::vector<WorkItem> build_petri_workload(bool certify) {
  const auto unfold = [](const PetriNet& net) {
    return serialize_system(build_reachability_graph(net).system);
  };
  const std::string fig1 = unfold(figure1_net());
  const std::string buffer4 = unfold(petri::bounded_buffer_net(4).net);
  const std::string ring4 = unfold(petri::ring_workflow_net(4).net);
  const std::string phil3 = unfold(petri::philosophers_net(3).net);

  std::vector<WorkItem> items;
  const auto add = [&](const std::string& system, const char* formula,
                       CheckKind kind, const char* label) {
    Query query;
    query.system = system;
    query.formula = formula;
    query.kind = kind;
    query.certify = certify;
    items.push_back({std::move(query), label});
  };
  add(fig1, "G F result", CheckKind::kRelativeLiveness, "fig1");
  add(fig1, "G F result", CheckKind::kRelativeSafety, "fig1");
  add(fig1, "G(request -> F (result | reject))", CheckKind::kRelativeLiveness,
      "fig1");
  add(fig1, "G(result -> !(X result))", CheckKind::kSatisfaction, "fig1");
  add(buffer4, "G F produce", CheckKind::kRelativeLiveness, "buffer4");
  add(buffer4, "G(produce -> F consume)", CheckKind::kRelativeLiveness,
      "buffer4");
  add(buffer4, "G F consume", CheckKind::kSatisfaction, "buffer4");
  add(ring4, "G F work_0", CheckKind::kRelativeLiveness, "ring4");
  add(ring4, "G F pass_0", CheckKind::kRelativeLiveness, "ring4");
  add(phil3, "G F eat_0", CheckKind::kRelativeLiveness, "phil3");
  add(phil3, "F eat_0", CheckKind::kRelativeSafety, "phil3");
  add(phil3, "G F eat_0", CheckKind::kSatisfaction, "phil3");
  return items;
}

struct ThreadResult {
  std::vector<double> latencies_ms;
  std::uint64_t errors = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t exhausted = 0;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

/// A trace of `events` actions guaranteed to keep the Figure 2 / GF result
/// monitor live: walk the locally compiled MonitorAutomaton greedily,
/// always taking the lowest symbol that stays kSatisfiable. The server
/// compiles the same automaton (same inputs), so every streamed batch must
/// answer "live" — any other verdict is a correctness error, not load.
std::vector<std::string> build_live_trace(std::size_t events) {
  const Nfa fig2 = figure2_system();
  const Buchi behaviors = limit_of_prefix_closed(fig2);
  const Labeling lambda = Labeling::canonical(fig2.alphabet());
  const monitor::MonitorAutomaton aut(behaviors, parse_ltl("G F result"),
                                      lambda);
  const Alphabet& sigma = *fig2.alphabet();
  std::vector<std::string> trace;
  trace.reserve(events);
  std::uint32_t state = aut.initial();
  for (std::size_t i = 0; i < events; ++i) {
    bool advanced = false;
    for (Symbol a = 0; a < sigma.size(); ++a) {
      const std::uint32_t next = aut.step(state, a);
      if (aut.verdict(next) == monitor::Verdict::kSatisfiable) {
        trace.push_back(sigma.name(a));
        state = next;
        advanced = true;
        break;
      }
    }
    if (!advanced) break;  // cannot happen for fig2: every live state has
                           // a live successor (the system is deadlock-free)
  }
  return trace;
}

/// The deterministic doom-protocol leg: one session on the buggy Figure 3
/// server with certification, stepped through the canonical dooming trace.
/// Every assertion failure counts as an error (the point is to verify the
/// wire protocol end to end, not to measure it).
std::uint64_t run_doom_assertions(const std::string& host, int port) {
  std::uint64_t errors = 0;
  const auto expect = [&errors](bool ok, const char* what) {
    if (!ok) {
      ++errors;
      std::fprintf(stderr, "error: doom assertion failed: %s\n", what);
    }
  };
  try {
    net::Client client;
    client.connect(host, static_cast<std::uint16_t>(port));
    MonitorSpec spec;
    spec.system = serialize_system(figure3_system());
    spec.formula = "G F result";
    spec.certify = true;
    const net::Response open = net::parse_response(
        client.call(net::render_monitor_open_request(spec, 1, "fig3")));
    expect(open.ok && open.has_session, "open fig3 certified");
    expect(open.verdict == "live", "fresh session is live");

    const std::vector<std::string> dooming = {"request", "yes", "result",
                                              "lock"};
    const net::Response doom = net::parse_response(client.call(
        net::render_monitor_step_request(open.session, dooming, 2)));
    expect(doom.ok, "dooming step answers ok");
    expect(doom.verdict == "doomed", "verdict is doomed after lock");
    expect(doom.has_doomed_index && doom.doomed_index == 3,
           "doom detected at batch index 3 (the lock)");
    expect(doom.witness_certified, "doom witness is certified");
    expect(doom.raw.find("\"witness\":[") != std::string::npos &&
               doom.raw.find("\"witness\":[]") == std::string::npos,
           "doom response carries a nonempty witness");

    const net::Response after = net::parse_response(client.call(
        net::render_monitor_step_request(open.session, {"request"}, 3)));
    expect(after.ok && after.verdict == "doomed" && !after.has_doomed_index,
           "doom is absorbing (no second transition report)");
    expect(after.events == 5, "event count accumulates across batches");

    const net::Response closed = net::parse_response(
        client.call(net::render_monitor_close_request(open.session, 4)));
    expect(closed.ok, "close succeeds");
    const net::Response again = net::parse_response(
        client.call(net::render_monitor_close_request(open.session, 5)));
    expect(!again.ok && again.error == "unknown_session",
           "double close reports unknown_session");
  } catch (const std::exception& e) {
    ++errors;
    std::fprintf(stderr, "error: doom assertion leg failed: %s\n", e.what());
  }
  return errors;
}

int run_monitor_mode(const std::string& host, int port, std::size_t sessions,
                     std::size_t events, std::size_t batch, bool want_stats) {
  const std::vector<std::string> trace = build_live_trace(events);
  const std::string fig2 = serialize_system(figure2_system());

  std::vector<ThreadResult> results(sessions);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(sessions);
  for (std::size_t t = 0; t < sessions; ++t) {
    threads.emplace_back([&, t] {
      ThreadResult& result = results[t];
      result.latencies_ms.reserve(trace.size() / batch + 1);
      net::Client client;
      try {
        client.connect(host, static_cast<std::uint16_t>(port));
        MonitorSpec spec;
        spec.system = fig2;
        spec.formula = "G F result";
        const net::Response open = net::parse_response(client.call(
            net::render_monitor_open_request(spec, t, "fig2")));
        if (open.overloaded) {
          ++result.overloaded;
          return;
        }
        if (!open.ok || !open.has_session) {
          ++result.errors;
          return;
        }
        for (std::size_t off = 0; off < trace.size(); off += batch) {
          const std::size_t n = std::min(batch, trace.size() - off);
          const std::vector<std::string> slice(trace.begin() + off,
                                               trace.begin() + off + n);
          const auto sent = std::chrono::steady_clock::now();
          const net::Response step = net::parse_response(client.call(
              net::render_monitor_step_request(open.session, slice, off)));
          const double rtt = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - sent)
                                 .count();
          // Closed-loop per-event latency: the batch RTT amortized over
          // its events (one response per batch is the protocol's shape).
          result.latencies_ms.push_back(rtt / static_cast<double>(n));
          if (!step.ok || step.verdict != "live") ++result.errors;
        }
        const net::Response closed = net::parse_response(client.call(
            net::render_monitor_close_request(open.session, trace.size())));
        if (!closed.ok || closed.events != trace.size()) ++result.errors;
      } catch (const std::exception&) {
        ++result.errors;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  std::vector<double> latencies;
  std::uint64_t errors = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t streamed_batches = 0;
  for (ThreadResult& result : results) {
    streamed_batches += result.latencies_ms.size();
    latencies.insert(latencies.end(), result.latencies_ms.begin(),
                     result.latencies_ms.end());
    errors += result.errors;
    overloaded += result.overloaded;
  }
  std::sort(latencies.begin(), latencies.end());
  const std::uint64_t total_events =
      static_cast<std::uint64_t>(trace.size()) *
      (sessions - overloaded);  // overloaded sessions streamed nothing
  const double events_per_s =
      wall_ms > 0 ? static_cast<double>(total_events) / (wall_ms / 1000.0)
                  : 0.0;

  errors += run_doom_assertions(host, port);

  std::printf(
      "{\"monitor_loadgen\":{\"sessions\":%zu,\"events_per_session\":%zu,"
      "\"batch\":%zu,\"total_events\":%llu,\"batches\":%llu,\"errors\":%llu,"
      "\"overloaded\":%llu,\"wall_ms\":%.1f,\"events_per_s\":%.1f,"
      "\"latency_ms\":{\"p50\":%.4f,\"p95\":%.4f,\"p99\":%.4f,\"max\":%.4f}}}\n",
      sessions, trace.size(), batch,
      static_cast<unsigned long long>(total_events),
      static_cast<unsigned long long>(streamed_batches),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(overloaded), wall_ms, events_per_s,
      percentile(latencies, 0.50), percentile(latencies, 0.95),
      percentile(latencies, 0.99),
      latencies.empty() ? 0.0 : latencies.back());

  if (want_stats) {
    try {
      net::Client client;
      client.connect(host, static_cast<std::uint16_t>(port));
      std::puts(client.call("{\"op\":\"stats\"}").c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: stats request failed: %s\n", e.what());
      return 1;
    }
  }
  return errors == 0 ? 0 : 1;
}

/// One closed-loop query-mode measurement: `connections` threads, each
/// driving `requests` back-to-back requests over the mixed workload.
/// Prints the {"loadgen":{...}} line and returns the error count — the
/// saturation sweep calls this once per connection count against one
/// warm server.
std::uint64_t run_query_leg(const std::string& host, int port,
                            std::size_t connections, std::size_t requests,
                            const std::vector<WorkItem>& workload) {
  std::vector<ThreadResult> results(connections);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (std::size_t t = 0; t < connections; ++t) {
    threads.emplace_back([&, t] {
      ThreadResult& result = results[t];
      result.latencies_ms.reserve(requests);
      net::Client client;
      try {
        client.connect(host, static_cast<std::uint16_t>(port));
      } catch (const std::exception&) {
        result.errors += requests;
        return;
      }
      for (std::size_t i = 0; i < requests; ++i) {
        // Stagger the walk so concurrent connections mix the workload.
        const WorkItem& item = workload[(i + t * 7) % workload.size()];
        const std::uint64_t id = t * requests + i;
        const auto sent = std::chrono::steady_clock::now();
        try {
          const std::string line = client.call(
              net::render_query_request(item.query, id, item.label));
          const net::Response response = net::parse_response(line);
          result.latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - sent)
                  .count());
          if (response.id != id) {
            ++result.errors;
          } else if (response.overloaded) {
            ++result.overloaded;
          } else if (response.resource_exhausted) {
            ++result.exhausted;
          } else if (!response.ok) {
            ++result.errors;
          }
        } catch (const std::exception&) {
          result.errors += requests - i;
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  std::vector<double> latencies;
  std::uint64_t errors = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t exhausted = 0;
  for (ThreadResult& result : results) {
    latencies.insert(latencies.end(), result.latencies_ms.begin(),
                     result.latencies_ms.end());
    errors += result.errors;
    overloaded += result.overloaded;
    exhausted += result.exhausted;
  }
  std::sort(latencies.begin(), latencies.end());
  const std::uint64_t total = connections * requests;
  const double throughput =
      wall_ms > 0 ? static_cast<double>(latencies.size()) / (wall_ms / 1000.0)
                  : 0.0;
  std::printf(
      "{\"loadgen\":{\"connections\":%zu,\"requests_per_connection\":%zu,"
      "\"total\":%llu,\"errors\":%llu,\"overloaded\":%llu,\"exhausted\":%llu,"
      "\"wall_ms\":%.1f,\"throughput_rps\":%.1f,"
      "\"latency_ms\":{\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f,\"max\":%.3f}}}\n",
      connections, requests, static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(overloaded),
      static_cast<unsigned long long>(exhausted), wall_ms, throughput,
      percentile(latencies, 0.50), percentile(latencies, 0.95),
      percentile(latencies, 0.99),
      latencies.empty() ? 0.0 : latencies.back());
  return errors;
}

/// Parses "1,2,4" into connection counts; empty result = bad list.
std::vector<std::size_t> parse_sweep(const std::string& list) {
  std::vector<std::size_t> counts;
  std::size_t pos = 0;
  while (pos < list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const int n = std::atoi(list.substr(pos, comma - pos).c_str());
    if (n <= 0) return {};
    counts.push_back(static_cast<std::size_t>(n));
    pos = comma + 1;
  }
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::size_t connections = 4;
  std::size_t requests = 64;
  bool certify = false;
  bool want_stats = false;
  bool monitor_mode = false;
  bool petri_mode = false;
  std::size_t sessions = 64;
  std::size_t events = 512;
  std::size_t batch = 32;
  std::vector<std::size_t> sweep;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--connections" && i + 1 < argc) {
      connections = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--requests" && i + 1 < argc) {
      requests = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--sweep-connections" && i + 1 < argc) {
      sweep = parse_sweep(argv[++i]);
      if (sweep.empty()) return usage();
    } else if (arg == "--monitor") {
      monitor_mode = true;
    } else if (arg == "--petri") {
      petri_mode = true;
    } else if (arg == "--sessions" && i + 1 < argc) {
      sessions = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--events" && i + 1 < argc) {
      events = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--batch" && i + 1 < argc) {
      batch = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--certify") {
      certify = true;
    } else if (arg == "--stats") {
      want_stats = true;
    } else {
      return usage();
    }
  }
  if (port <= 0 || port > 65535 || connections == 0 || requests == 0) {
    return usage();
  }
  if (monitor_mode && (sessions == 0 || events == 0 || batch == 0)) {
    return usage();
  }

  // Fail fast (exit 2) when the server is not there at all.
  try {
    net::Client probe;
    probe.connect(host, static_cast<std::uint16_t>(port));
    (void)probe.call("{\"op\":\"ping\"}");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  if (monitor_mode) {
    return run_monitor_mode(host, port, sessions, events, batch, want_stats);
  }

  const std::vector<WorkItem> workload =
      petri_mode ? build_petri_workload(certify) : build_workload(certify);

  std::uint64_t errors = 0;
  if (sweep.empty()) {
    errors = run_query_leg(host, port, connections, requests, workload);
  } else {
    // Saturation sweep: one warm server, rising concurrency. The first
    // leg pays the cache-warming misses, so lead with the smallest count
    // (the caller orders the list) and read the later legs as warm.
    for (const std::size_t n : sweep) {
      errors += run_query_leg(host, port, n, requests, workload);
    }
  }

  if (want_stats) {
    try {
      net::Client client;
      client.connect(host, static_cast<std::uint16_t>(port));
      std::puts(client.call("{\"op\":\"stats\"}").c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: stats request failed: %s\n", e.what());
      return 1;
    }
  }
  return errors == 0 ? 0 : 1;
}

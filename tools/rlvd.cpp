// rlvd — batch verification server front end for rlv::engine.
//
// Reads a line-oriented request protocol from a file (or stdin when the
// path is "-" or omitted), executes every query through the concurrent
// engine, and emits exactly one JSON object per query, in input order, on
// stdout. Request lines:
//
//   <system-file> [--check rl|rs|sat|fair|fairweak]
//                 [--algorithm subset|antichain] [--threads N]
//                 [--property-aut <buchi-file>] [<formula...>]
//
// Everything after the system path and the optional flags is the PLTL
// formula; with --property-aut the property is a Büchi automaton file
// instead and the formula must be absent. '#' starts a comment and blank
// lines are skipped. System and property paths are resolved relative to
// the batch file's directory (relative to the working directory when
// reading stdin).
//
// Result lines (one per query):
//
//   {"id":0,"system":"fig2.rlv","check":"rl","formula":"G F result",
//    "ok":true,"holds":true,"witness":"...",
//    "witness_prefix":["req"],"witness_period":["ack"],"ms":0.42,
//    "stages":{"parse":0.01,"translate":0.2,...},
//    "cache":{"hits":12,"misses":4,"evictions":0}}
//
// (see src/rlv/engine/record.hpp for the exact record shape — the
// structured witness arrays are the machine-readable form certificate
// round-trips should consume)
//
// A query that hits the --timeout-ms / --max-states budget reports
// "ok":false,"resource_exhausted":true,"stage":"<tripping stage>" — its
// siblings are unaffected. "stages" maps each pipeline stage that ran to
// its exclusive milliseconds. "cache" is the engine-wide cumulative counter
// snapshot (hits + misses + evictions summed over all caches) at the time
// the result line is emitted. A summary line with the full per-cache
// EngineStats breakdown goes to stderr.
//
// Options:
//   --jobs N        worker threads (default 1: sequential)
//   --cache N       per-cache capacity in entries (default 256)
//   --timeout-ms N  per-query wall-clock budget (default 0: unlimited)
//   --max-states N  per-query constructed-state budget (default 0)
//   --threads N     intra-query threads for the parallel inclusion search
//                   (default 1: sequential; per-line --threads overrides)
//   --certify       revalidate every negative verdict's witness with the
//                   independent certificate checker before it is cached; a
//                   rejected witness turns the record into "ok":false with
//                   an "error" naming the failed certificate
//   --metrics       emit an end-of-batch JSON metrics summary on stdout
//
// Exit status: 0 = every line executed (whatever the verdicts), 2 = bad
// invocation, unreadable batch file, or a malformed request line.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "rlv/engine/engine.hpp"
#include "rlv/engine/record.hpp"
#include "rlv/io/format.hpp"

namespace {

using namespace rlv;

int usage() {
  std::fprintf(
      stderr,
      "usage: rlvd [<batch-file>|-] [--jobs N] [--cache N] [--timeout-ms N]"
      " [--max-states N] [--threads N] [--certify] [--metrics]\n"
      "  batch line: <system-file> [--check rl|rs|sat|fair|fairweak]"
      " [--algorithm subset|antichain] [--threads N]"
      " [--property-aut <file>] [<formula...>]\n");
  return 2;
}

struct Request {
  std::string system_path;    // as written in the batch file
  std::string property_path;  // with --property-aut
  Query query;
};

std::string resolve(const std::string& path, const std::string& base_dir) {
  if (!base_dir.empty() && path[0] != '/') return base_dir + "/" + path;
  return path;
}

/// Splits one request line; returns nullopt for blanks/comments, throws
/// std::runtime_error on malformed lines.
std::optional<Request> parse_request_line(const std::string& line,
                                          const std::string& base_dir) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) {
    if (token[0] == '#') break;
    tokens.push_back(token);
  }
  if (tokens.empty()) return std::nullopt;

  Request request;
  request.system_path = tokens[0];
  std::size_t i = 1;
  while (i < tokens.size()) {
    if (i + 1 < tokens.size() && tokens[i] == "--check") {
      const auto kind = parse_check_kind(tokens[i + 1]);
      if (!kind) {
        throw std::runtime_error("unknown check kind '" + tokens[i + 1] + "'");
      }
      request.query.kind = *kind;
      i += 2;
    } else if (i + 1 < tokens.size() && tokens[i] == "--algorithm") {
      const auto algorithm = parse_inclusion_algorithm(tokens[i + 1]);
      if (!algorithm) {
        throw std::runtime_error("unknown inclusion algorithm '" +
                                 tokens[i + 1] + "'");
      }
      request.query.algorithm = *algorithm;
      i += 2;
    } else if (i + 1 < tokens.size() && tokens[i] == "--threads") {
      const int threads = std::atoi(tokens[i + 1].c_str());
      if (threads <= 0) {
        throw std::runtime_error("bad --threads '" + tokens[i + 1] + "'");
      }
      request.query.threads = static_cast<std::size_t>(threads);
      i += 2;
    } else if (i + 1 < tokens.size() && tokens[i] == "--property-aut") {
      request.property_path = tokens[i + 1];
      i += 2;
    } else {
      break;
    }
  }
  std::string formula;
  for (; i < tokens.size(); ++i) {
    if (!formula.empty()) formula += ' ';
    formula += tokens[i];
  }
  if (request.property_path.empty()) {
    if (formula.empty()) throw std::runtime_error("missing formula");
  } else {
    if (!formula.empty()) {
      throw std::runtime_error(
          "formula and --property-aut are mutually exclusive");
    }
    request.query.property_automaton =
        read_file(resolve(request.property_path, base_dir));
  }
  request.query.formula = std::move(formula);
  request.query.system = read_file(resolve(request.system_path, base_dir));
  return request;
}

void print_counters(std::ostream& out, const char* name,
                    const CacheCounters& c) {
  out << '"' << name << "\":{\"hits\":" << c.hits
      << ",\"misses\":" << c.misses << ",\"evictions\":" << c.evictions
      << '}';
}

}  // namespace

int main(int argc, char** argv) {
  std::string batch_path = "-";
  EngineOptions options;
  bool have_path = false;
  bool metrics = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      options.jobs = static_cast<std::size_t>(std::atoi(argv[++i]));
      if (options.jobs == 0) return usage();
    } else if (arg == "--cache" && i + 1 < argc) {
      options.cache_capacity = static_cast<std::size_t>(std::atoi(argv[++i]));
      if (options.cache_capacity == 0) return usage();
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      options.timeout_ms =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--max-states" && i + 1 < argc) {
      options.max_states =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--threads" && i + 1 < argc) {
      options.intra_query_threads =
          static_cast<std::size_t>(std::atoi(argv[++i]));
      if (options.intra_query_threads == 0) return usage();
    } else if (arg == "--certify") {
      options.certify_verdicts = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (!have_path) {
      batch_path = arg;
      have_path = true;
    } else {
      return usage();
    }
  }

  std::string base_dir;
  std::istringstream file_input;
  std::istream* in = &std::cin;
  if (batch_path != "-") {
    try {
      file_input.str(read_file(batch_path));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    in = &file_input;
    const std::size_t slash = batch_path.rfind('/');
    if (slash != std::string::npos) base_dir = batch_path.substr(0, slash);
  }

  std::vector<Request> requests;
  std::string line;
  for (std::size_t line_number = 1; std::getline(*in, line); ++line_number) {
    try {
      auto request = parse_request_line(line, base_dir);
      if (request) requests.push_back(std::move(*request));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: line %zu: %s\n", line_number, e.what());
      return 2;
    }
  }

  const auto batch_start = std::chrono::steady_clock::now();
  Engine engine(options);
  std::vector<Query> queries;
  queries.reserve(requests.size());
  for (const Request& r : requests) queries.push_back(r.query);
  const std::vector<Verdict> verdicts = engine.run(queries);
  const double batch_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - batch_start)
                              .count();

  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    const Request& request = requests[i];
    const std::string record = render_query_record(
        i, request.query, verdicts[i], request.system_path,
        request.property_path, engine.stats().total());
    std::puts(record.c_str());
  }

  const EngineStats stats = engine.stats();

  if (metrics) {
    // End-of-batch machine-readable summary: per-stage totals (exclusive ms,
    // calls, states, frontier peaks) plus batch wall time, on stdout so it
    // rides the same pipe as the results.
    std::ostringstream m;
    m << "{\"metrics\":{\"queries\":" << stats.queries_run
      << ",\"certificates_checked\":" << stats.certificates_checked
      << ",\"certificates_failed\":" << stats.certificates_failed
      << ",\"wall_ms\":" << batch_ms
      << ",\"stage_ms\":" << render_stage_times(stats.stages);
    m << ",\"stage_detail\":{";
    bool first = true;
    for (std::size_t i = 0; i < kNumStages; ++i) {
      const StageMetrics& sm = stats.stages.stages[i];
      if (sm.calls == 0 && sm.nanos == 0) continue;
      if (!first) m << ',';
      first = false;
      m << '"' << stage_name(static_cast<Stage>(i))
        << "\":{\"calls\":" << sm.calls << ",\"states\":" << sm.states_built
        << ",\"peak_frontier\":" << sm.peak_antichain
        << ",\"ms\":" << static_cast<double>(sm.nanos) / 1e6 << '}';
    }
    m << "}}}";
    std::puts(m.str().c_str());
  }

  std::ostringstream summary;
  summary << "{\"queries\":" << stats.queries_run
          << ",\"certificates_checked\":" << stats.certificates_checked
          << ",\"certificates_failed\":" << stats.certificates_failed << ',';
  print_counters(summary, "systems", stats.systems);
  summary << ',';
  print_counters(summary, "behaviors", stats.behaviors);
  summary << ',';
  print_counters(summary, "prefixes", stats.prefixes);
  summary << ',';
  print_counters(summary, "translations", stats.translations);
  summary << ',';
  print_counters(summary, "properties", stats.properties);
  summary << ',';
  print_counters(summary, "verdicts", stats.verdicts);
  summary << '}';
  std::fprintf(stderr, "rlvd: %s\n", summary.str().c_str());
  return 0;
}

// rlvd — batch verification server front end for rlv::engine.
//
// Reads a line-oriented request protocol from a file (or stdin when the
// path is "-" or omitted), executes every query through the concurrent
// engine, and emits exactly one JSON object per query, in input order, on
// stdout. Request lines:
//
//   <system-file> [--check rl|rs|sat|fair|fairweak] <formula...>
//
// Everything after the system path (and the optional --check flag) is the
// PLTL formula; '#' starts a comment and blank lines are skipped. System
// paths are resolved relative to the batch file's directory (relative to
// the working directory when reading stdin).
//
// Result lines (one per query):
//
//   {"id":0,"system":"fig2.rlv","check":"rl","formula":"G F result",
//    "ok":true,"holds":true,"witness":"...","ms":0.42,
//    "cache":{"hits":12,"misses":4,"evictions":0}}
//
// "cache" is the engine-wide cumulative counter snapshot (hits + misses +
// evictions summed over all five caches) at the time the result line is
// emitted. A summary line with the full per-cache EngineStats breakdown
// goes to stderr.
//
// Options:
//   --jobs N     worker threads (default 1: sequential)
//   --cache N    per-cache capacity in entries (default 256)
//
// Exit status: 0 = every line executed (whatever the verdicts), 2 = bad
// invocation, unreadable batch file, or a malformed request line.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "rlv/engine/engine.hpp"
#include "rlv/io/format.hpp"

namespace {

using namespace rlv;

int usage() {
  std::fprintf(stderr,
               "usage: rlvd [<batch-file>|-] [--jobs N] [--cache N]\n"
               "  batch line: <system-file> [--check rl|rs|sat|fair|fairweak]"
               " <formula...>\n");
  return 2;
}

/// JSON string escaping (control characters, quotes, backslashes).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct Request {
  std::string system_path;  // as written in the batch file
  Query query;
};

/// Splits one request line; returns nullopt for blanks/comments, throws
/// std::runtime_error on malformed lines.
std::optional<Request> parse_request_line(const std::string& line,
                                          const std::string& base_dir) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) {
    if (token[0] == '#') break;
    tokens.push_back(token);
  }
  if (tokens.empty()) return std::nullopt;

  Request request;
  request.system_path = tokens[0];
  std::size_t i = 1;
  if (i + 1 < tokens.size() && tokens[i] == "--check") {
    const auto kind = parse_check_kind(tokens[i + 1]);
    if (!kind) {
      throw std::runtime_error("unknown check kind '" + tokens[i + 1] + "'");
    }
    request.query.kind = *kind;
    i += 2;
  }
  if (i >= tokens.size()) {
    throw std::runtime_error("missing formula");
  }
  std::string formula;
  for (; i < tokens.size(); ++i) {
    if (!formula.empty()) formula += ' ';
    formula += tokens[i];
  }
  request.query.formula = std::move(formula);

  std::string path = request.system_path;
  if (!base_dir.empty() && path[0] != '/') path = base_dir + "/" + path;
  request.query.system = read_file(path);
  return request;
}

void print_counters(std::ostream& out, const char* name,
                    const CacheCounters& c) {
  out << '"' << name << "\":{\"hits\":" << c.hits
      << ",\"misses\":" << c.misses << ",\"evictions\":" << c.evictions
      << '}';
}

}  // namespace

int main(int argc, char** argv) {
  std::string batch_path = "-";
  EngineOptions options;
  bool have_path = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      options.jobs = static_cast<std::size_t>(std::atoi(argv[++i]));
      if (options.jobs == 0) return usage();
    } else if (arg == "--cache" && i + 1 < argc) {
      options.cache_capacity = static_cast<std::size_t>(std::atoi(argv[++i]));
      if (options.cache_capacity == 0) return usage();
    } else if (!have_path) {
      batch_path = arg;
      have_path = true;
    } else {
      return usage();
    }
  }

  std::string base_dir;
  std::istringstream file_input;
  std::istream* in = &std::cin;
  if (batch_path != "-") {
    try {
      file_input.str(read_file(batch_path));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    in = &file_input;
    const std::size_t slash = batch_path.rfind('/');
    if (slash != std::string::npos) base_dir = batch_path.substr(0, slash);
  }

  std::vector<Request> requests;
  std::string line;
  for (std::size_t line_number = 1; std::getline(*in, line); ++line_number) {
    try {
      auto request = parse_request_line(line, base_dir);
      if (request) requests.push_back(std::move(*request));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: line %zu: %s\n", line_number, e.what());
      return 2;
    }
  }

  Engine engine(options);
  std::vector<Query> queries;
  queries.reserve(requests.size());
  for (const Request& r : requests) queries.push_back(r.query);
  const std::vector<Verdict> verdicts = engine.run(queries);

  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    const Request& request = requests[i];
    const Verdict& v = verdicts[i];
    const CacheCounters cache = engine.stats().total();
    std::ostringstream out;
    out << "{\"id\":" << i << ",\"system\":\""
        << json_escape(request.system_path) << "\",\"check\":\""
        << check_kind_name(request.query.kind) << "\",\"formula\":\""
        << json_escape(request.query.formula) << "\",\"ok\":"
        << (v.ok() ? "true" : "false");
    if (v.ok()) {
      out << ",\"holds\":" << (v.holds ? "true" : "false");
      // Witness symbols are ids over the system's alphabet; reparse the
      // (small) system text to render them as action names.
      if (v.violating_prefix) {
        const Nfa system = parse_system(request.query.system);
        out << ",\"witness\":\""
            << json_escape(system.alphabet()->format(*v.violating_prefix))
            << '"';
      } else if (v.counterexample) {
        const Nfa system = parse_system(request.query.system);
        out << ",\"witness\":\""
            << json_escape(
                   system.alphabet()->format(v.counterexample->prefix) +
                   " (" +
                   system.alphabet()->format(v.counterexample->period) +
                   ")^w")
            << '"';
      }
    } else {
      out << ",\"error\":\"" << json_escape(v.error) << '"';
    }
    out << ",\"ms\":" << v.millis << ",\"cache\":{";
    out << "\"hits\":" << cache.hits << ",\"misses\":" << cache.misses
        << ",\"evictions\":" << cache.evictions << "}}";
    std::puts(out.str().c_str());
  }

  const EngineStats stats = engine.stats();
  std::ostringstream summary;
  summary << "{\"queries\":" << stats.queries_run << ',';
  print_counters(summary, "systems", stats.systems);
  summary << ',';
  print_counters(summary, "behaviors", stats.behaviors);
  summary << ',';
  print_counters(summary, "prefixes", stats.prefixes);
  summary << ',';
  print_counters(summary, "translations", stats.translations);
  summary << ',';
  print_counters(summary, "verdicts", stats.verdicts);
  summary << '}';
  std::fprintf(stderr, "rlvd: %s\n", summary.str().c_str());
  return 0;
}

// rlvd — batch verification front end and serving daemon for rlv::engine.
//
// Two modes share one engine and one record format:
//
//   batch (default)   read a line-oriented request file, answer, exit;
//   --serve <port>    stay resident, own the engine and its warm caches,
//                     and serve the newline-delimited JSON protocol of
//                     src/rlv/net/protocol.hpp to concurrent TCP clients.
//                     SIGINT/SIGTERM triggers a graceful drain (stop
//                     accepting, finish in-flight queries under their
//                     Budget deadlines, flush responses, exit 0).
//
// In batch mode rlvd reads from a file (or stdin when the path is "-" or
// omitted), executes every query through the concurrent engine, and emits
// exactly one JSON object per query, in input order, on stdout. Request
// lines (CRLF input is accepted — lines are chomped through
// rlv::strip_cr, the same helper the network protocol uses):
//
//   <system-file> [--check rl|rs|sat|fair|fairweak]
//                 [--algorithm subset|antichain] [--threads N]
//                 [--property-aut <buchi-file>] [<formula...>]
//
// Everything after the system path and the optional flags is the PLTL
// formula; with --property-aut the property is a Büchi automaton file
// instead and the formula must be absent. '#' starts a comment and blank
// lines are skipped. System and property paths are resolved relative to
// the batch file's directory (relative to the working directory when
// reading stdin).
//
// Result lines (one per query):
//
//   {"id":0,"system":"fig2.rlv","check":"rl","formula":"G F result",
//    "ok":true,"holds":true,"witness":"...",
//    "witness_prefix":["req"],"witness_period":["ack"],"ms":0.42,
//    "stages":{"parse":0.01,"translate":0.2,...},
//    "cache":{"hits":12,"misses":4,"evictions":0}}
//
// (see src/rlv/engine/record.hpp for the exact record shape — the
// structured witness arrays are the machine-readable form certificate
// round-trips should consume)
//
// A query that hits the --timeout-ms / --max-states budget reports
// "ok":false,"resource_exhausted":true,"stage":"<tripping stage>" — its
// siblings are unaffected. "stages" maps each pipeline stage that ran to
// its exclusive milliseconds. "cache" is the engine-wide cumulative counter
// snapshot (hits + misses + evictions summed over all caches) at the time
// the result line is emitted. A summary line with the full per-cache
// EngineStats breakdown goes to stderr.
//
// Options:
//   --jobs N        worker threads (default 1: sequential)
//   --cache N       per-cache capacity in entries (default 256)
//   --timeout-ms N  per-query wall-clock budget (default 0: unlimited)
//   --max-states N  per-query constructed-state budget (default 0)
//   --threads N     intra-query threads for the parallel inclusion search
//                   (default 1: sequential; per-line --threads overrides)
//   --certify       revalidate every negative verdict's witness with the
//                   independent certificate checker before it is cached; a
//                   rejected witness turns the record into "ok":false with
//                   an "error" naming the failed certificate
//   --metrics       emit an end-of-batch JSON metrics summary on stdout
//
// Serving options (with --serve; --timeout-ms doubles as the cap on
// client-supplied budgets and defaults to 30000 when unset, so drain can
// rely on every in-flight query expiring):
//   --bind ADDR            listen address (default 127.0.0.1)
//   --max-inflight N       global concurrent-query bound (default 64)
//   --max-conn-inflight N  per-connection bound (default 8)
//   --max-connections N    accepted-client bound (default 256)
//   --idle-timeout-ms N    close silent connections (default 120000)
//   --drain-timeout-ms N   graceful-shutdown bound (default 5000)
//   --max-sessions N       global cap on open monitor sessions (65536)
//   --max-conn-sessions N  per-connection monitor-session cap (4096)
//   --max-steps-per-request N  monitor_step batch cap (8192)
//   --session-idle-timeout-ms N  reclaim idle monitor sessions (0 = never)
//   --reactors N           event-loop threads (default 1); each reactor
//                          owns its own listener (SO_REUSEPORT), pollfd
//                          table, and connections — size to the cores you
//                          can spare beyond the worker pool
//
// Exit status: 0 = every line executed (whatever the verdicts) or clean
// serve shutdown, 2 = bad invocation, unreadable batch file, or a
// malformed request line.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "rlv/engine/engine.hpp"
#include "rlv/engine/record.hpp"
#include "rlv/io/format.hpp"
#include "rlv/net/server.hpp"

namespace {

using namespace rlv;

int usage() {
  std::fprintf(
      stderr,
      "usage: rlvd [<batch-file>|-] [--jobs N] [--cache N] [--timeout-ms N]"
      " [--max-states N] [--threads N] [--certify] [--metrics]\n"
      "       rlvd --serve <port> [--bind ADDR] [--jobs N] [--cache N]"
      " [--timeout-ms N] [--max-states N] [--threads N] [--certify]\n"
      "            [--max-inflight N] [--max-conn-inflight N]"
      " [--max-connections N] [--idle-timeout-ms N] [--drain-timeout-ms N]\n"
      "            [--max-sessions N] [--max-conn-sessions N]"
      " [--max-steps-per-request N] [--session-idle-timeout-ms N]"
      " [--reactors N]\n"
      "  batch line: <system-file> [--check rl|rs|sat|fair|fairweak]"
      " [--algorithm subset|antichain] [--threads N]"
      " [--property-aut <file>] [<formula...>]\n");
  return 2;
}

std::atomic<net::Server*> g_server{nullptr};

void handle_stop_signal(int) {
  if (net::Server* server = g_server.load(std::memory_order_acquire)) {
    server->request_stop();  // async-signal-safe: atomic store + pipe write
  }
}

int serve(EngineOptions engine_options, net::ServerOptions server_options) {
  // The event loop never executes queries; that takes a real worker pool.
  if (engine_options.jobs < 2) engine_options.jobs = 2;
  // Serving without any per-query deadline would leave drain at the mercy
  // of the slowest query; default the cap (which also serves as the
  // per-request default) unless the operator chose one.
  if (engine_options.timeout_ms == 0) engine_options.timeout_ms = 30000;
  server_options.limits.max_timeout_ms = engine_options.timeout_ms;
  server_options.limits.max_max_states = engine_options.max_states;
  server_options.limits.max_threads =
      std::max<std::size_t>(engine_options.intra_query_threads, 1);

  Engine engine(engine_options);
  net::Server server(engine, server_options);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  g_server.store(&server, std::memory_order_release);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  std::fprintf(stderr,
               "rlvd: serving on %s:%u (jobs=%zu, reactors=%zu, "
               "timeout-ms=%llu)\n",
               server_options.bind_address.c_str(), server.port(),
               engine_options.jobs, server_options.reactors,
               static_cast<unsigned long long>(engine_options.timeout_ms));
  server.run();
  g_server.store(nullptr, std::memory_order_release);
  const net::ServerCounters counters = server.counters();
  std::fprintf(stderr,
               "rlvd: drained (connections=%llu, requests=%llu, "
               "queries=%llu, overload_rejects=%llu, protocol_errors=%llu)\n",
               static_cast<unsigned long long>(counters.connections_accepted),
               static_cast<unsigned long long>(counters.requests),
               static_cast<unsigned long long>(counters.queries),
               static_cast<unsigned long long>(counters.overload_rejects),
               static_cast<unsigned long long>(counters.protocol_errors));
  std::fprintf(stderr, "rlvd: %s\n", render_stats(engine.stats()).c_str());
  return 0;
}

struct Request {
  std::string system_path;    // as written in the batch file
  std::string property_path;  // with --property-aut
  Query query;
};

std::string resolve(const std::string& path, const std::string& base_dir) {
  if (!base_dir.empty() && path[0] != '/') return base_dir + "/" + path;
  return path;
}

/// Splits one request line; returns nullopt for blanks/comments, throws
/// std::runtime_error on malformed lines.
std::optional<Request> parse_request_line(const std::string& line,
                                          const std::string& base_dir) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) {
    if (token[0] == '#') break;
    tokens.push_back(token);
  }
  if (tokens.empty()) return std::nullopt;

  Request request;
  request.system_path = tokens[0];
  std::size_t i = 1;
  while (i < tokens.size()) {
    if (i + 1 < tokens.size() && tokens[i] == "--check") {
      const auto kind = parse_check_kind(tokens[i + 1]);
      if (!kind) {
        throw std::runtime_error("unknown check kind '" + tokens[i + 1] + "'");
      }
      request.query.kind = *kind;
      i += 2;
    } else if (i + 1 < tokens.size() && tokens[i] == "--algorithm") {
      const auto algorithm = parse_inclusion_algorithm(tokens[i + 1]);
      if (!algorithm) {
        throw std::runtime_error("unknown inclusion algorithm '" +
                                 tokens[i + 1] + "'");
      }
      request.query.algorithm = *algorithm;
      i += 2;
    } else if (i + 1 < tokens.size() && tokens[i] == "--threads") {
      const int threads = std::atoi(tokens[i + 1].c_str());
      if (threads <= 0) {
        throw std::runtime_error("bad --threads '" + tokens[i + 1] + "'");
      }
      request.query.threads = static_cast<std::size_t>(threads);
      i += 2;
    } else if (i + 1 < tokens.size() && tokens[i] == "--property-aut") {
      request.property_path = tokens[i + 1];
      i += 2;
    } else {
      break;
    }
  }
  std::string formula;
  for (; i < tokens.size(); ++i) {
    if (!formula.empty()) formula += ' ';
    formula += tokens[i];
  }
  if (request.property_path.empty()) {
    if (formula.empty()) throw std::runtime_error("missing formula");
  } else {
    if (!formula.empty()) {
      throw std::runtime_error(
          "formula and --property-aut are mutually exclusive");
    }
    request.query.property_automaton =
        read_file(resolve(request.property_path, base_dir));
  }
  request.query.formula = std::move(formula);
  request.query.system = read_file(resolve(request.system_path, base_dir));
  return request;
}

}  // namespace

int main(int argc, char** argv) {
  std::string batch_path = "-";
  EngineOptions options;
  net::ServerOptions server_options;
  bool have_path = false;
  bool metrics = false;
  bool serve_mode = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--serve" && i + 1 < argc) {
      const int port = std::atoi(argv[++i]);
      if (port < 0 || port > 65535) return usage();
      server_options.port = static_cast<std::uint16_t>(port);
      serve_mode = true;
    } else if (arg == "--bind" && i + 1 < argc) {
      server_options.bind_address = argv[++i];
    } else if (arg == "--max-inflight" && i + 1 < argc) {
      server_options.max_inflight =
          static_cast<std::size_t>(std::atoi(argv[++i]));
      if (server_options.max_inflight == 0) return usage();
    } else if (arg == "--max-conn-inflight" && i + 1 < argc) {
      server_options.max_inflight_per_connection =
          static_cast<std::size_t>(std::atoi(argv[++i]));
      if (server_options.max_inflight_per_connection == 0) return usage();
    } else if (arg == "--max-connections" && i + 1 < argc) {
      server_options.max_connections =
          static_cast<std::size_t>(std::atoi(argv[++i]));
      if (server_options.max_connections == 0) return usage();
    } else if (arg == "--idle-timeout-ms" && i + 1 < argc) {
      server_options.idle_timeout_ms =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--drain-timeout-ms" && i + 1 < argc) {
      server_options.drain_timeout_ms =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--session-idle-timeout-ms" && i + 1 < argc) {
      server_options.session_idle_timeout_ms =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--reactors" && i + 1 < argc) {
      server_options.reactors = static_cast<std::size_t>(std::atoi(argv[++i]));
      if (server_options.reactors == 0) return usage();
    } else if (arg == "--max-sessions" && i + 1 < argc) {
      options.max_sessions = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--max-conn-sessions" && i + 1 < argc) {
      server_options.limits.max_sessions_per_connection =
          static_cast<std::size_t>(std::atoi(argv[++i]));
      if (server_options.limits.max_sessions_per_connection == 0) {
        return usage();
      }
    } else if (arg == "--max-steps-per-request" && i + 1 < argc) {
      server_options.limits.max_steps_per_request =
          static_cast<std::size_t>(std::atoi(argv[++i]));
      if (server_options.limits.max_steps_per_request == 0) return usage();
    } else if (arg == "--jobs" && i + 1 < argc) {
      options.jobs = static_cast<std::size_t>(std::atoi(argv[++i]));
      if (options.jobs == 0) return usage();
    } else if (arg == "--cache" && i + 1 < argc) {
      options.cache_capacity = static_cast<std::size_t>(std::atoi(argv[++i]));
      if (options.cache_capacity == 0) return usage();
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      options.timeout_ms =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--max-states" && i + 1 < argc) {
      options.max_states =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--threads" && i + 1 < argc) {
      options.intra_query_threads =
          static_cast<std::size_t>(std::atoi(argv[++i]));
      if (options.intra_query_threads == 0) return usage();
    } else if (arg == "--certify") {
      options.certify_verdicts = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (!have_path) {
      batch_path = arg;
      have_path = true;
    } else {
      return usage();
    }
  }

  if (serve_mode) {
    if (have_path || metrics) return usage();
    try {
      return serve(options, server_options);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  std::string base_dir;
  std::istringstream file_input;
  std::istream* in = &std::cin;
  if (batch_path != "-") {
    try {
      file_input.str(read_file(batch_path));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    in = &file_input;
    const std::size_t slash = batch_path.rfind('/');
    if (slash != std::string::npos) base_dir = batch_path.substr(0, slash);
  }

  std::vector<Request> requests;
  std::string line;
  for (std::size_t line_number = 1; std::getline(*in, line); ++line_number) {
    try {
      // CRLF batch files (network clients, Windows editors) are chomped
      // through the same helper the wire protocol uses.
      auto request =
          parse_request_line(std::string(strip_cr(line)), base_dir);
      if (request) requests.push_back(std::move(*request));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: line %zu: %s\n", line_number, e.what());
      return 2;
    }
  }

  const auto batch_start = std::chrono::steady_clock::now();
  Engine engine(options);
  std::vector<Query> queries;
  queries.reserve(requests.size());
  for (const Request& r : requests) queries.push_back(r.query);
  const std::vector<Verdict> verdicts = engine.run(queries);
  const double batch_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - batch_start)
                              .count();

  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    const Request& request = requests[i];
    const std::string record = render_query_record(
        i, request.query, verdicts[i], request.system_path,
        request.property_path, engine.stats().total());
    std::puts(record.c_str());
  }

  const EngineStats stats = engine.stats();
  const std::string stats_json = render_stats(stats);

  if (metrics) {
    // End-of-batch machine-readable summary: the shared EngineStats
    // serialization (per-cache counters + per-stage calls/states/frontier
    // peaks/exclusive ms) plus batch wall time, on stdout so it rides the
    // same pipe as the results.
    std::ostringstream m;
    m << "{\"metrics\":{\"wall_ms\":" << batch_ms
      << ",\"stats\":" << stats_json << "}}";
    std::puts(m.str().c_str());
  }

  std::fprintf(stderr, "rlvd: %s\n", stats_json.c_str());
  return 0;
}

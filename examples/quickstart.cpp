// Quickstart: build the paper's server system (Figure 2), and ask the three
// questions the paper distinguishes:
//
//   1. Does the system *satisfy* □◇result classically?      (no)
//   2. Is □◇result a *relative liveness* property of it?    (yes)
//   3. Is it a *relative safety* property?                  (no)
//
// Relative liveness = "true given some fairness help" (Section 1): every
// finite behavior can still be extended into one that satisfies the
// property.

#include <cstdio>

#include "rlv/core/relative.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/omega/lasso.hpp"
#include "rlv/omega/limit.hpp"

int main() {
  using namespace rlv;

  // The transition system of Figure 2 (reachability graph of the Figure 1
  // Petri net), as a prefix-closed behavior language L; its ω-behaviors are
  // lim(L).
  const Nfa system_graph = figure2_system();
  const Buchi behaviors = limit_of_prefix_closed(system_graph);
  const Labeling lambda = Labeling::canonical(system_graph.alphabet());

  const Formula property = parse_ltl("G F result");
  std::printf("system: %zu states, %zu transitions\n",
              system_graph.num_states(), system_graph.num_transitions());
  std::printf("property: %s\n\n", property.to_string().c_str());

  // 1. Classical satisfaction fails: the lock/(request no reject)^ω
  //    behavior never produces a result.
  const bool sat = satisfies(behaviors, property, lambda).holds;
  std::printf("classically satisfied:      %s\n", sat ? "yes" : "no");

  // 2. But it is a relative liveness property: every prefix extends to a
  //    behavior with infinitely many results.
  const auto rl = relative_liveness(behaviors, property, lambda);
  std::printf("relative liveness property: %s\n", rl.holds ? "yes" : "no");

  // 3. And not a relative safety property (otherwise, by Theorem 4.7, it
  //    would be satisfied outright).
  const auto rs = relative_safety(behaviors, property, lambda);
  std::printf("relative safety property:   %s\n", rs.holds ? "yes" : "no");
  if (rs.counterexample) {
    std::printf(
        "  safety counterexample: %s (%s)^w  -- a behavior violating the "
        "property whose prefixes all remain extendable into it\n",
        system_graph.alphabet()->format(rs.counterexample->prefix).c_str(),
        system_graph.alphabet()->format(rs.counterexample->period).c_str());
  }

  return sat || !rl.holds || rs.holds;  // exit 0 on the expected verdicts
}

// The Sections 6–8 verification pipeline on a scalable system: an n-client
// resource server whose state space grows as 2·4^n, abstracted onto the
// three actions of client 0. The pipeline checks the property on the tiny
// abstract system, certifies the homomorphism simple, and concludes about
// the concrete system by Theorem 8.2 — then cross-checks against the direct
// concrete computation.

#include <chrono>
#include <cstdio>

#include "rlv/core/preservation.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/pnf.hpp"
#include "rlv/petri/reachability.hpp"

int main(int argc, char** argv) {
  using namespace rlv;
  using Clock = std::chrono::steady_clock;

  const std::size_t num_clients = (argc > 1) ? std::strtoul(argv[1], nullptr, 10) : 3;

  const PetriNet net = resource_server_net(num_clients);
  const ReachabilityGraph graph = build_reachability_graph(net);
  std::printf("resource server with %zu clients: %zu concrete states\n",
              num_clients, graph.system.num_states());

  const Homomorphism h =
      resource_server_abstraction(graph.system.alphabet());
  const Formula eta = to_pnf(parse_ltl("G F result_0"));
  std::printf("property (abstract level): %s\n", eta.to_string().c_str());

  const auto t0 = Clock::now();
  const AbstractionVerdict verdict =
      verify_via_abstraction(graph.system, h, eta);
  const auto t1 = Clock::now();

  std::printf("abstract system: %zu states (vs %zu concrete)\n",
              verdict.abstract_states, verdict.concrete_states);
  std::printf("abstract check: %s\n",
              verdict.abstract_holds ? "relative liveness holds" : "fails");
  std::printf("homomorphism simple: %s\n",
              !verdict.simplicity_checked
                  ? "not decided (not needed for a refutation)"
                  : verdict.simplicity.simple ? "yes" : "no");
  std::printf("h(L) has maximal words: %s\n",
              verdict.image_has_maximal_words ? "yes" : "no");
  std::printf("transferred formula R(eta): %s\n",
              verdict.transformed.to_string().c_str());
  if (verdict.concrete_holds) {
    std::printf("conclusion (Theorem 8.2/8.3): concrete property %s\n",
                *verdict.concrete_holds ? "HOLDS" : "FAILS");
  } else {
    std::printf("no sound conclusion (homomorphism not simple)\n");
  }
  std::printf("pipeline time: %lld ms\n",
              static_cast<long long>(
                  std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0)
                      .count()));

  // Cross-check against the direct concrete computation.
  const auto t2 = Clock::now();
  const bool direct = concrete_relative_liveness(graph.system, h, eta);
  const auto t3 = Clock::now();
  std::printf("direct concrete check: %s (%lld ms)\n",
              direct ? "HOLDS" : "FAILS",
              static_cast<long long>(
                  std::chrono::duration_cast<std::chrono::milliseconds>(t3 - t2)
                      .count()));

  const bool consistent =
      !verdict.concrete_holds || *verdict.concrete_holds == direct;
  std::printf("pipeline and direct check agree: %s\n",
              consistent ? "yes" : "NO — BUG");
  return consistent ? 0 : 1;
}

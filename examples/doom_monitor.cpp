// Runtime doom monitoring — relative liveness as an online verdict.
//
// Relative liveness of P means "no finite behavior is ever doomed": the
// property can always still come true. When it fails, the interesting
// question at runtime is *when* a concrete execution crossed the line. The
// DoomMonitor answers it in O(1) per observed action. On the paper's buggy
// server (Figure 3), executing `lock` is the doom step: from then on, no
// continuation can ever produce a result — detected immediately, long
// before an (infinite) liveness violation could ever be observed directly.
// This is the "sooner is safer than later" view ([12]) of the paper's
// relative liveness/safety pair.

#include <cstdio>

#include "rlv/core/monitor.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/omega/limit.hpp"

namespace {

const char* describe(rlv::MonitorVerdict v) {
  switch (v) {
    case rlv::MonitorVerdict::kSatisfiable:
      return "ok";
    case rlv::MonitorVerdict::kDoomed:
      return "DOOMED";
    case rlv::MonitorVerdict::kLeftSystem:
      return "left system";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace rlv;

  const Formula property = parse_ltl("G F result");

  for (const bool buggy : {false, true}) {
    const Nfa graph = buggy ? figure3_system() : figure2_system();
    const Buchi behaviors = limit_of_prefix_closed(graph);
    const Labeling lambda = Labeling::canonical(graph.alphabet());
    DoomMonitor monitor(behaviors, property, lambda);

    std::printf("=== %s server, monitoring %s ===\n",
                buggy ? "buggy (Figure 3)" : "correct (Figure 2)",
                property.to_string().c_str());

    const char* script[] = {"request", "yes", "result", "lock",
                            "request", "no",  "reject"};
    for (const char* action : script) {
      const MonitorVerdict verdict =
          monitor.step(graph.alphabet()->id(action));
      std::printf("  %-8s -> %s\n", action, describe(verdict));
    }
    std::printf("\n");
  }
  return 0;
}

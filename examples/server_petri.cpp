// The full Section 2 walk-through, starting from the Petri net of Figure 1:
//
//   Figure 1 (net)  --reachability-->  Figure 2 (behaviors)
//   Figure 2        --h-->             Figure 4 (abstract behaviors)
//   Figure 3 (buggy server)            and its identical abstraction
//
// and the relative-liveness verdicts that distinguish the correct system
// from the buggy one even though their abstractions coincide.

#include <cstdio>

#include "rlv/core/relative.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/hom/image.hpp"
#include "rlv/hom/simplicity.hpp"
#include "rlv/lang/inclusion.hpp"
#include "rlv/lang/ops.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/omega/limit.hpp"
#include "rlv/petri/reachability.hpp"

int main() {
  using namespace rlv;

  // --- Figure 1: the Petri net. -------------------------------------------
  const PetriNet net = figure1_net();
  std::printf("Figure 1 net: %zu places, %zu transitions\n", net.num_places(),
              net.num_transitions());

  // --- Figure 2: its reachability graph. ----------------------------------
  const ReachabilityGraph graph = build_reachability_graph(net);
  std::printf("Figure 2 reachability graph: %zu states, %zu transitions, "
              "deadlocks: %zu\n",
              graph.system.num_states(), graph.system.num_transitions(),
              graph.deadlocks.size());

  const Nfa fig2 = figure2_system();
  const Nfa remapped = remap_alphabet(graph.system, fig2.alphabet());
  std::printf("matches the hand-drawn Figure 2: %s\n\n",
              nfa_equivalent(remapped, fig2) ? "yes" : "no");

  // --- The paper's property on both servers. ------------------------------
  const Formula property = parse_ltl("G F result");
  for (const bool buggy : {false, true}) {
    const Nfa system = buggy ? figure3_system() : figure2_system();
    const Buchi behaviors = limit_of_prefix_closed(system);
    const Labeling lambda = Labeling::canonical(system.alphabet());
    const auto rl = relative_liveness(behaviors, property, lambda);
    std::printf("%s: G F result is %sa relative liveness property\n",
                buggy ? "Figure 3 (buggy) " : "Figure 2 (correct)",
                rl.holds ? "" : "NOT ");
    if (rl.violating_prefix) {
      std::printf("  doomed prefix: %s\n",
                  system.alphabet()->format(*rl.violating_prefix).c_str());
    }
  }

  // --- Figure 4: both abstract to the same system. -------------------------
  std::printf("\n");
  const Nfa fig3 = figure3_system();
  const Homomorphism h2 = paper_abstraction(fig2.alphabet());
  const Homomorphism h3 = paper_abstraction(fig3.alphabet());
  const Nfa abs2 = image_nfa(fig2, h2);
  const Nfa abs3 = image_nfa(fig3, h3);
  std::printf("Figure 4 abstraction: %zu states (from Figure 2), %zu states "
              "(from Figure 3)\n",
              abs2.num_states(), abs3.num_states());
  const Nfa abs3_remap = remap_alphabet(abs3, h2.target());
  std::printf("the two abstractions are equivalent: %s\n",
              nfa_equivalent(abs2, abs3_remap) ? "yes" : "no");

  // --- Only simplicity tells them apart. -----------------------------------
  const SimplicityResult s2 = check_simplicity(fig2, h2);
  const SimplicityResult s3 = check_simplicity(fig3, h3);
  std::printf("h simple on Figure 2 behaviors: %s (%zu cont-class pairs)\n",
              s2.simple ? "yes" : "no", s2.pairs_checked);
  std::printf("h simple on Figure 3 behaviors: %s", s3.simple ? "yes" : "no");
  if (s3.violating_word) {
    std::printf("  (violated at w = %s)",
                fig3.alphabet()->format(*s3.violating_word).c_str());
  }
  std::printf("\n");
  return 0;
}

// Peterson's mutual exclusion, analyzed across the whole spectrum the paper
// organizes: safety (holds outright), liveness (false without fairness),
// relative liveness (always realizable), truth under strong fairness
// (Peterson's actual guarantee), and the branching-time view (AG EF).

#include <cstdio>

#include "rlv/core/relative.hpp"
#include "rlv/ctl/ctl.hpp"
#include "rlv/fair/fair_check.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/omega/lasso.hpp"
#include "rlv/omega/limit.hpp"

int main() {
  using namespace rlv;

  const Nfa system = peterson_system();
  std::printf("Peterson's algorithm: %zu states, %zu transitions\n\n",
              system.num_states(), system.num_transitions());

  const Buchi behaviors = limit_of_prefix_closed(system);
  const Labeling lambda = Labeling::canonical(system.alphabet());

  const Formula mutex = parse_ltl(
      "G(enter_0 -> X((!enter_1 U exit_0) || G !enter_1))");
  std::printf("mutual exclusion   %-42s : %s\n", mutex.to_string().c_str(),
              satisfies(behaviors, mutex, lambda).holds ? "satisfied outright"
                                                  : "VIOLATED");

  const Formula starvation = parse_ltl("G(req_0 -> F enter_0)");
  std::printf("starvation freedom %-42s :\n", starvation.to_string().c_str());
  std::printf("  satisfied outright:         %s\n",
              satisfies(behaviors, starvation, lambda).holds ? "yes" : "no");
  const auto rl = relative_liveness(behaviors, starvation, lambda);
  std::printf("  relative liveness property: %s\n", rl.holds ? "yes" : "no");
  const auto fair = check_fair_satisfaction(behaviors, starvation, lambda);
  std::printf("  under strong fairness:      %s\n",
              fair.all_fair_runs_satisfy ? "yes (Peterson's guarantee)"
                                         : "no");

  std::printf("\nbranching view:\n");
  std::printf("  AG EF can(enter_0): %s\n",
              ctl_holds(system, parse_ctl("AG EF can(enter_0)")) ? "yes"
                                                                 : "no");
  std::printf("  AG !deadlock:       %s\n",
              ctl_holds(system, parse_ctl("AG !deadlock")) ? "yes" : "no");
  return 0;
}

// Feature-interaction detection in an intelligent telephone network — the
// application domain the paper cites ([6], Capellmann et al., CAV'96:
// "Verification by behavior abstraction: a case study of service
// interaction detection in intelligent telephone networks").
//
// Two features are installed for subscriber B: Call Forwarding on busy
// (CF: divert to subscriber C) and Voice Mail (VM: record a message). When
// B is busy, both features want the same call — a classical undesired
// feature interaction. We hide the network-internal actions with an
// abstracting homomorphism, certify it simple, and detect the interaction
// on the small abstract system: both ◇forward and ◇voicemail are relative
// liveness properties after a dial, i.e. both features can win the race.
// A precedence fix (CF before VM) removes the ambiguity.

#include <cstdio>

#include "rlv/core/preservation.hpp"
#include "rlv/core/relative.hpp"
#include "rlv/hom/image.hpp"
#include "rlv/hom/simplicity.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/ltl/pnf.hpp"
#include "rlv/omega/limit.hpp"

namespace {

using namespace rlv;

/// The telephone system. `cf_precedence` = the fixed configuration where
/// call forwarding takes priority over voice mail on busy.
Nfa phone_system(bool cf_precedence) {
  auto sigma =
      Alphabet::make({"dial", "b_free", "b_busy", "connect", "cf_trigger",
                      "forward", "vm_trigger", "voicemail", "hangup",
                      "toggle_busy"});
  Nfa nfa(sigma);
  enum : State {
    kIdleFree = 0,   // B on-hook
    kIdleBusy,       // B in another call
    kRingingB,       // A dialed, B free
    kBusyDecision,   // A dialed, B busy: features race
    kInCallB,        // A talking to B
    kCfTriggered,    // CF claimed the call
    kRingingC,       // forwarded, C ringing
    kInCallC,        // A talking to C
    kVmTriggered,    // VM claimed the call
    kRecording,      // A recording a message
    kStateCount
  };
  for (State s = 0; s < kStateCount; ++s) nfa.add_state(true);

  nfa.add_transition(kIdleFree, sigma->id("toggle_busy"), kIdleBusy);
  nfa.add_transition(kIdleBusy, sigma->id("toggle_busy"), kIdleFree);

  nfa.add_transition(kIdleFree, sigma->id("dial"), kRingingB);
  nfa.add_transition(kRingingB, sigma->id("b_free"), kInCallB);
  nfa.add_transition(kInCallB, sigma->id("connect"), kInCallB);
  nfa.add_transition(kInCallB, sigma->id("hangup"), kIdleFree);

  nfa.add_transition(kIdleBusy, sigma->id("dial"), kBusyDecision);
  nfa.add_transition(kBusyDecision, sigma->id("b_busy"), kBusyDecision);
  nfa.add_transition(kBusyDecision, sigma->id("cf_trigger"), kCfTriggered);
  if (!cf_precedence) {
    // Without precedence both features race for the call.
    nfa.add_transition(kBusyDecision, sigma->id("vm_trigger"), kVmTriggered);
  }
  nfa.add_transition(kCfTriggered, sigma->id("forward"), kRingingC);
  nfa.add_transition(kRingingC, sigma->id("connect"), kInCallC);
  nfa.add_transition(kInCallC, sigma->id("hangup"), kIdleBusy);

  nfa.add_transition(kVmTriggered, sigma->id("voicemail"), kRecording);
  nfa.add_transition(kRecording, sigma->id("hangup"), kIdleBusy);

  nfa.set_initial(kIdleFree);
  return nfa;
}

void analyze(const char* name, const Nfa& system) {
  std::printf("=== %s ===\n", name);
  const Homomorphism h = Homomorphism::projection(
      system.alphabet(), {"dial", "connect", "forward", "voicemail"});

  const Nfa abstract = image_nfa(system, h);
  std::printf("concrete states: %zu, abstract states: %zu\n",
              system.num_states(), abstract.num_states());

  const SimplicityResult simple = check_simplicity(system, h);
  std::printf("abstraction simple: %s\n", simple.simple ? "yes" : "no");

  const Buchi abstract_behaviors = limit_of_prefix_closed(abstract);
  const Labeling lambda = Labeling::canonical(h.target());

  // Liveness of service: every dial is eventually answered some way.
  const Formula answered =
      parse_ltl("G(dial -> F(connect || forward || voicemail))");
  std::printf("G(dial -> F answered) relative liveness (abstract): %s\n",
              relative_liveness(abstract_behaviors, answered, lambda).holds
                  ? "yes"
                  : "no");

  // Interaction probe: can each feature still win a call?
  const Formula cf_wins = parse_ltl("F forward");
  const Formula vm_wins = parse_ltl("F voicemail");
  const bool cf = relative_liveness(abstract_behaviors, cf_wins, lambda).holds;
  const bool vm = relative_liveness(abstract_behaviors, vm_wins, lambda).holds;
  std::printf("call forwarding can claim a call: %s\n", cf ? "yes" : "no");
  std::printf("voice mail can claim a call:      %s\n", vm ? "yes" : "no");
  if (cf && vm) {
    std::printf("--> FEATURE INTERACTION: both features compete for the "
                "busy-call\n");
  } else {
    std::printf("--> no interaction: feature resolution is deterministic\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  analyze("CF + VM, no precedence (interacting)", phone_system(false));
  analyze("CF before VM (fixed)", phone_system(true));
  return 0;
}

// Section 5 / Theorem 5.1 demonstration. The behavior set {a,b}^ω has the
// relative liveness property ◇(a ∧ ○a) ("eventually two a's in a row"), but
// strong fairness on the *minimal* automaton does not realize it: (ab)^ω is
// perfectly fair and never plays aa. Theorem 5.1's construction adds the
// missing state information; on the synthesized automaton, every strongly
// fair run satisfies the property — which we also confirm empirically with
// the fair scheduler.

#include <cstdio>

#include "rlv/core/fair_synthesis.hpp"
#include "rlv/core/relative.hpp"
#include "rlv/fair/fair_check.hpp"
#include "rlv/fair/simulate.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/ltl/eval.hpp"
#include "rlv/ltl/parser.hpp"
#include "rlv/omega/limit.hpp"

namespace {

/// Does the finite word contain "aa"?
bool contains_aa(const rlv::Word& w, rlv::Symbol a) {
  for (std::size_t i = 0; i + 1 < w.size(); ++i) {
    if (w[i] == a && w[i + 1] == a) return true;
  }
  return false;
}

}  // namespace

int main() {
  using namespace rlv;

  const Nfa minimal = section5_ab_system();
  const Buchi behaviors = limit_of_prefix_closed(minimal);
  const Labeling lambda = Labeling::canonical(minimal.alphabet());
  const Formula property = parse_ltl("F(a && X a)");

  std::printf("behaviors: {a,b}^w on the minimal (%zu-state) automaton\n",
              minimal.num_states());
  std::printf("property:  %s\n\n", property.to_string().c_str());

  const auto rl = relative_liveness(behaviors, property, lambda);
  std::printf("relative liveness property: %s\n", rl.holds ? "yes" : "no");

  const auto naive = check_fair_satisfaction(behaviors, property, lambda);
  std::printf("all strongly fair runs of the minimal automaton satisfy it: "
              "%s\n",
              naive.all_fair_runs_satisfy ? "yes" : "no");
  if (naive.counterexample) {
    std::printf("  fair violating run: %s (%s)^w\n",
                minimal.alphabet()->format(naive.counterexample->prefix).c_str(),
                minimal.alphabet()->format(naive.counterexample->period).c_str());
  }

  const FairImplementation impl =
      synthesize_fair_implementation(behaviors, property, lambda);
  std::printf("\nsynthesized implementation: %zu states\n",
              impl.system.num_states());
  std::printf("same omega-language: %s\n",
              same_limit_closed_language(behaviors, impl.system) ? "yes"
                                                                 : "no");
  const auto synth = check_fair_satisfaction(impl.system, property, lambda);
  std::printf("all strongly fair runs of the synthesized automaton satisfy "
              "it: %s\n",
              synth.all_fair_runs_satisfy ? "yes" : "no");

  // Empirical confirmation: the fair scheduler on the synthesized automaton
  // produces aa quickly, every time.
  std::printf("\nfair scheduler on the synthesized automaton (20 runs, 64 "
              "steps each):\n");
  const Symbol a = minimal.alphabet()->id("a");
  int hits = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SimulationOptions options;
    options.seed = seed;
    options.steps = 64;
    const Word run = simulate_fair_run(impl.system.structure(), options);
    hits += contains_aa(run, a) ? 1 : 0;
  }
  std::printf("runs containing \"aa\": %d / 20\n", hits);
  return (rl.holds && !naive.all_fair_runs_satisfy &&
          synth.all_fair_runs_satisfy && hits == 20)
             ? 0
             : 1;
}

// The alternating-bit protocol over lossy channels — the textbook instance
// of the paper's subject: □◇deliver is false outright (the channel may lose
// every message), is true under strong fairness, and "relative liveness"
// captures that middle ground abstractly: whatever has happened, delivery
// can still be achieved.

#include <cstdio>

#include "rlv/comp/sync.hpp"
#include "rlv/core/relative.hpp"
#include "rlv/fair/fair_check.hpp"
#include "rlv/fair/simulate.hpp"
#include "rlv/gen/families.hpp"
#include "rlv/ltl/patterns.hpp"
#include "rlv/omega/lasso.hpp"
#include "rlv/omega/limit.hpp"

int main() {
  using namespace rlv;

  const auto components = alternating_bit_components();
  const Nfa system = sync_product(components);
  std::printf("alternating-bit protocol: %zu components, %zu product states, "
              "%zu transitions\n",
              components.size(), system.num_states(), system.num_transitions());

  const Buchi behaviors = limit_of_prefix_closed(system);
  const Labeling lambda = Labeling::canonical(system.alphabet());
  const Formula goal = patterns::infinitely_often("deliver");
  std::printf("property: %s\n\n", goal.to_string().c_str());

  std::printf("satisfied outright:          %s\n",
              satisfies(behaviors, goal, lambda).holds ? "yes" : "no");
  std::printf("relative liveness property:  %s\n",
              relative_liveness(behaviors, goal, lambda).holds ? "yes" : "no");
  const auto fair = check_fair_satisfaction(behaviors, goal, lambda);
  std::printf("holds under strong fairness: %s\n",
              fair.all_fair_runs_satisfy ? "yes" : "no");

  // The canonical doomed-looking-but-not-doomed scenario: lose everything
  // for a while — delivery remains achievable.
  const auto& sigma = system.alphabet();
  const Word all_lost = {sigma->id("send0"), sigma->id("lose_msg"),
                         sigma->id("send0"), sigma->id("lose_msg")};
  std::printf("\nafter %zu message losses the property is still achievable "
              "(relative liveness in action)\n",
              all_lost.size() / 2);

  // Fair execution statistics.
  SimulationOptions options;
  options.steps = 2000;
  options.seed = 11;
  const Word run = simulate_fair_run(system, options);
  std::size_t delivers = 0;
  std::size_t losses = 0;
  for (const Symbol s : run) {
    delivers += (s == sigma->id("deliver")) ? 1 : 0;
    losses +=
        (s == sigma->id("lose_msg") || s == sigma->id("lose_ack")) ? 1 : 0;
  }
  std::printf("\nfair execution, %zu steps: %zu messages delivered, %zu "
              "channel losses\n",
              run.size(), delivers, losses);
  return 0;
}
